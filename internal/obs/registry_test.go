package obs

import (
	"strings"
	"testing"
)

// A nil registry must hand back inert zero handles: wiring is unconditional
// in the instrumented packages, so every operation has to no-op cleanly.
func TestNilRegistryZeroHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x_depth", "")
	h := r.Histogram("x_ms", "", []float64{1, 2})
	r.CounterFunc("x_fn_total", "", func() uint64 { return 1 })
	r.GaugeFunc("x_fn", "", func() float64 { return 1 })

	c.Inc()
	c.Add(7)
	c.Store(3)
	g.Set(5)
	g.Add(-2)
	g.SetMax(9)
	h.Observe(1.5)

	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("zero handles leaked state: counter=%d gauge=%d", c.Value(), g.Value())
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", len(s.Metrics))
	}
}

// The disabled path must be allocation-free: this is the property the
// tentpole's "0 extra allocs in BenchmarkTrafficEngine" rests on.
func TestDisabledHandlesZeroAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.SetMax(2)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled handles allocated %.1f/op", allocs)
	}
}

// Enabled handles must also stay allocation-free on the hot path.
func TestEnabledHandlesZeroAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ms", "", ExpBuckets(1, 2, 8))
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.SetMax(4)
		h.Observe(3)
	})
	if allocs != 0 {
		t.Fatalf("enabled handles allocated %.1f/op", allocs)
	}
}

func TestSnapshotValuesAndOrder(t *testing.T) {
	r := New()
	c := r.Counter("zz_total", "last registered, first name sorts first")
	g := r.Gauge("aa_depth", "")
	r.CounterFunc("mm_total", "", func() uint64 { return 42 })
	c.Add(5)
	g.Set(-3)

	s := r.Snapshot()
	if len(s.Metrics) != 3 {
		t.Fatalf("got %d metrics", len(s.Metrics))
	}
	wantOrder := []string{"aa_depth", "mm_total", "zz_total"}
	wantValue := []float64{-3, 42, 5}
	for i, m := range s.Metrics {
		if m.Name != wantOrder[i] || m.Value != wantValue[i] {
			t.Errorf("metric %d = %s:%v, want %s:%v", i, m.Name, m.Value, wantOrder[i], wantValue[i])
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ms", "", []float64{1, 10})
	for _, v := range []float64{0.5, 0.9, 5, 100} {
		h.Observe(v)
	}
	m := r.Snapshot().Metrics[0]
	if m.Count != 4 || m.Sum != 106.4 {
		t.Fatalf("count=%d sum=%v", m.Count, m.Sum)
	}
	want := []struct {
		le    string
		count uint64
	}{{"1", 2}, {"10", 3}, {"+Inf", 4}}
	for i, b := range m.Buckets {
		if b.Le != want[i].le || b.Count != want[i].count {
			t.Errorf("bucket %d = {%s %d}, want %+v", i, b.Le, b.Count, want[i])
		}
	}
}

func TestMerge(t *testing.T) {
	build := func(c uint64, g int64, obs float64) Snapshot {
		r := New()
		r.Counter("c_total", "").Add(c)
		r.Gauge("g_peak", "").Set(g)
		r.Histogram("h_ms", "", []float64{1}).Observe(obs)
		return r.Snapshot()
	}
	m := Merge(build(3, 10, 0.5), build(4, 7, 2))
	byName := map[string]SnapshotMetric{}
	for _, sm := range m.Metrics {
		byName[sm.Name] = sm
	}
	if v := byName["c_total"].Value; v != 7 {
		t.Errorf("merged counter = %v, want 7", v)
	}
	if v := byName["g_peak"].Value; v != 10 {
		t.Errorf("merged gauge = %v, want max 10", v)
	}
	h := byName["h_ms"]
	if h.Count != 2 || h.Sum != 2.5 || h.Buckets[0].Count != 1 || h.Buckets[1].Count != 2 {
		t.Errorf("merged histogram = %+v", h)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("frames_total", "frames", Label{"dir", "in"}).Add(12)
	r.Counter("frames_total", "frames", Label{"dir", "out"}).Add(9)
	r.Histogram("rtt_ms", "round trips", []float64{1}).Observe(0.25)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter\n",
		`frames_total{dir="in"} 12` + "\n",
		`frames_total{dir="out"} 9` + "\n",
		"# TYPE rtt_ms histogram\n",
		`rtt_ms_bucket{le="1"} 1` + "\n",
		`rtt_ms_bucket{le="+Inf"} 1` + "\n",
		"rtt_ms_sum 0.25\n",
		"rtt_ms_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE frames_total"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want once", n)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := New()
	r.Counter("dup_total", "")
	r.Counter("dup_total", "")
}
