package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the text exposition content type /metrics serves.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4). Collector funcs are evaluated here; HELP/TYPE headers are
// emitted once per metric name even when labels split it into series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders an already-taken snapshot; the daemon uses the
// registry form, the CLI can render saved snapshots.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	seen := map[string]bool{}
	for _, m := range s.Metrics {
		if !seen[m.Name] {
			seen[m.Name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
		}
		var err error
		if m.Kind == "histogram" {
			err = writeHistogram(w, m)
		} else {
			_, err = fmt.Fprintf(w, "%s%s %s\n", m.Name, renderLabels(m.Labels, ""), formatFloat(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(w io.Writer, m SnapshotMetric) error {
	for _, b := range m.Buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, renderLabels(m.Labels, b.Le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, renderLabels(m.Labels, ""), formatFloat(m.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, renderLabels(m.Labels, ""), m.Count)
	return err
}

// renderLabels renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label.
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a metric value: integers without an exponent, else
// the shortest round-trip form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
