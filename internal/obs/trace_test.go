package obs

import (
	"bytes"
	"testing"
	"time"

	"qolsr/internal/rng"
)

// The sampler's 1-in-N choice must be a pure function of (seed, flow, seq)
// — exactly rng.Mix(seed, flow, seq) % n — and therefore independent of the
// order packets are presented in. This is the property that keeps traces
// identical across worker counts.
func TestSamplerKeyedByMixNotArrivalOrder(t *testing.T) {
	const seed, every = int64(17), 8
	s := NewSampler(seed, every)

	type key struct {
		flow uint32
		seq  uint64
	}
	var keys []key
	for flow := uint32(0); flow < 16; flow++ {
		for seq := uint64(0); seq < 64; seq++ {
			keys = append(keys, key{flow, seq})
		}
	}

	// Forward order: every decision matches the Mix formula.
	forward := map[key]bool{}
	sampled := 0
	for _, k := range keys {
		got := s.Sample(k.flow, k.seq)
		want := rng.Mix(uint64(seed), uint64(k.flow), k.seq)%every == 0
		if got != want {
			t.Fatalf("Sample(%d,%d) = %v, Mix says %v", k.flow, k.seq, got, want)
		}
		forward[k] = got
		if got {
			sampled++
		}
	}
	if sampled == 0 || sampled == len(keys) {
		t.Fatalf("degenerate sampling: %d of %d", sampled, len(keys))
	}

	// Reversed and interleaved "arrival orders" change nothing.
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if s.Sample(k.flow, k.seq) != forward[k] {
			t.Fatalf("reversed order flipped decision for %+v", k)
		}
	}
	perm := rng.NewStream(99)
	for range keys {
		k := keys[perm.Int63n(int64(len(keys)))]
		if s.Sample(k.flow, k.seq) != forward[k] {
			t.Fatalf("shuffled order flipped decision for %+v", k)
		}
	}
}

func TestSamplerDisabled(t *testing.T) {
	s := NewSampler(1, 0)
	if s.Sample(0, 0) {
		t.Fatal("disabled sampler sampled a packet")
	}
	all := NewSampler(1, 1)
	if !all.Sample(3, 9) {
		t.Fatal("1-in-1 sampler skipped a packet")
	}
}

// A nil tracer must be fully inert through the whole call chain the data
// plane uses.
func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	pt := tr.Start(1, 2)
	if pt != nil {
		t.Fatal("nil tracer started a trace")
	}
	pt.Hop(3, time.Second, 0)
	pt.Finish("delivered", 2*time.Second)
	if tr.Events() != nil {
		t.Fatal("nil tracer accumulated events")
	}
}

func TestTracerSpansAndOutcome(t *testing.T) {
	tr := NewTracer(1, 1, 7) // sample everything, pid 7
	pt := tr.Start(5, 11)
	if pt == nil {
		t.Fatal("1-in-1 tracer did not start a trace")
	}
	pt.Hop(2, 10*time.Millisecond, 0)
	pt.Hop(4, 14*time.Millisecond, 1*time.Millisecond)
	pt.Finish("medium-loss", 15*time.Millisecond)

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 2 spans + 1 instant", len(ev))
	}
	first := ev[0]
	if first.Phase != "X" || first.Name != "n2" || first.Ts != 10000 || first.Dur != 4000 || first.Pid != 7 || first.Tid != 5 {
		t.Errorf("span 0 = %+v", first)
	}
	if ev[1].Args.WaitUs != 1000 {
		t.Errorf("hop wait = %v µs, want 1000", ev[1].Args.WaitUs)
	}
	term := ev[2]
	if term.Phase != "i" || term.Name != "medium-loss" || term.Args.Drop != "medium-loss" || term.Args.Node != 4 {
		t.Errorf("terminal event = %+v", term)
	}
}

// WriteTrace output must parse as a Chrome trace-event document: a
// traceEvents array whose entries carry the mandatory name/ph/ts/pid/tid
// fields with the right JSON types.
func TestWriteTraceSchema(t *testing.T) {
	tr := NewTracer(3, 1, 0)
	pt := tr.Start(1, 1)
	pt.Hop(0, 0, 0)
	pt.Finish("delivered", time.Millisecond)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Empty traces still produce a loadable document.
	buf.Reset()
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	// The validator must actually reject malformed documents.
	for _, bad := range []string{
		`{}`,
		`{"traceEvents":[{"ph":"X","ts":0,"pid":0,"tid":0,"dur":1}]}`,
		`{"traceEvents":[{"name":"n0","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		`{"traceEvents":[{"name":"n0","ph":"X","ts":-1,"pid":0,"tid":0,"dur":1}]}`,
	} {
		if err := ValidateTrace([]byte(bad)); err == nil {
			t.Errorf("validator accepted %s", bad)
		}
	}
}
