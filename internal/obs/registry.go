// Package obs is the repository's unified observability layer: one metrics
// registry shared by the simulator and the daemon, plus sampled packet path
// tracing (trace.go).
//
// The registry is built for instrumented hot paths. Registration (which
// allocates) happens once at wiring time and hands back fixed-slot value
// handles — Counter, Gauge, Histogram — whose operations are a nil check and
// an atomic op. The zero handle is a no-op: a nil *Registry returns zero
// handles from every constructor, so call sites thread instrumentation
// unconditionally and pay nothing when observability is off. For counters
// that already exist as plain struct fields on the hot path (sim.DataStats,
// olsr.RebuildStats, ...), CounterFunc/GaugeFunc register lazy collectors
// evaluated only at snapshot or scrape time — literally zero steady-state
// cost.
//
// Snapshots are deterministic: metrics sort by (name, labels), values are a
// pure function of the instrumented run. The same snapshot renders as
// Prometheus text exposition (prometheus.go) for the daemon's /metrics and
// as JSON for `qolsr-sim scenario run -metrics-out`.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric types in snapshots and exposition.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name=value pair attached to a metric at registration time.
// Labels are fixed per handle — there is no dynamic label lookup, so the hot
// path never touches a map.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// metric is one registered slot. Exactly one of cell/gauge/hist/counterFn/
// gaugeFn backs it, fixed at registration.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   Kind

	cell      *atomic.Uint64 // Counter storage
	gauge     *atomic.Int64  // Gauge storage
	hist      *histogram     // Histogram storage
	counterFn func() uint64  // lazy counter collector
	gaugeFn   func() float64 // lazy gauge collector
}

// Registry holds registered metrics. Registration is mutex-guarded (cold);
// handle operations touch only their own atomic cell and never the registry,
// so instrumented hot paths are lock-free and allocation-free.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]struct{} // name+labels uniqueness
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{index: make(map[string]struct{})}
}

// register validates and stores a slot. Panics on duplicate identity or an
// invalid name: both are wiring bugs, not runtime conditions.
func (r *Registry) register(m *metric) {
	if !validName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	key := m.name + labelKey(m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.index[key]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %s%s", m.name, labelKey(m.labels)))
	}
	r.index[key] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// validName enforces the Prometheus metric-name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// labelKey renders labels in registration order for identity checks.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + "=" + l.Value
	}
	return s + "}"
}

// Counter returns a monotone counter handle. On a nil registry the zero
// handle is returned and every operation is a no-op.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	if r == nil {
		return Counter{}
	}
	c := new(atomic.Uint64)
	r.register(&metric{name: name, help: help, labels: labels, kind: KindCounter, cell: c})
	return Counter{c: c}
}

// Gauge returns a gauge handle. Nil registry: zero no-op handle.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	if r == nil {
		return Gauge{}
	}
	g := new(atomic.Int64)
	r.register(&metric{name: name, help: help, labels: labels, kind: KindGauge, gauge: g})
	return Gauge{g: g}
}

// Histogram returns a histogram handle over the given ascending upper
// bounds (an implicit +Inf bucket is appended). Nil registry: zero handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) Histogram {
	if r == nil {
		return Histogram{}
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	h := &histogram{bounds: append([]float64(nil), bounds...), buckets: make([]atomic.Uint64, len(bounds)+1)}
	r.register(&metric{name: name, help: help, labels: labels, kind: KindHistogram, hist: h})
	return Histogram{h: h}
}

// CounterFunc registers a lazy counter collector: fn is evaluated at
// snapshot/scrape time only, so exporting an existing plain counter costs
// nothing on the hot path. fn must be safe to call from the snapshotting
// goroutine. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, labels: labels, kind: KindCounter, counterFn: fn})
}

// GaugeFunc registers a lazy gauge collector; see CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, labels: labels, kind: KindGauge, gaugeFn: fn})
}

// Counter is a monotone counter handle. The zero value no-ops.
type Counter struct{ c *atomic.Uint64 }

// Inc adds one.
func (c Counter) Inc() {
	if c.c != nil {
		c.c.Add(1)
	}
}

// Add adds n.
func (c Counter) Add(n uint64) {
	if c.c != nil {
		c.c.Add(n)
	}
}

// Store overwrites the counter. It exists for mirroring a monotone source
// owned by another goroutine (the daemon's event loop copies RebuildStats
// into registry cells this way); the caller guarantees monotonicity.
func (c Counter) Store(v uint64) {
	if c.c != nil {
		c.c.Store(v)
	}
}

// Value reads the counter (0 on the zero handle).
func (c Counter) Value() uint64 {
	if c.c == nil {
		return 0
	}
	return c.c.Load()
}

// Gauge is an instantaneous int64 value handle. The zero value no-ops.
type Gauge struct{ g *atomic.Int64 }

// Set stores v.
func (g Gauge) Set(v int64) {
	if g.g != nil {
		g.g.Store(v)
	}
}

// Add adds d.
func (g Gauge) Add(d int64) {
	if g.g != nil {
		g.g.Add(d)
	}
}

// SetMax raises the gauge to v if v is greater — the high-water-mark form.
func (g Gauge) SetMax(v int64) {
	if g.g == nil {
		return
	}
	for {
		cur := g.g.Load()
		if v <= cur || g.g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge (0 on the zero handle).
func (g Gauge) Value() int64 {
	if g.g == nil {
		return 0
	}
	return g.g.Load()
}

// histogram is fixed-bucket storage: counts per bound plus an overflow
// bucket, a total count and a float sum (CAS on bits — uncontended in the
// single-threaded simulator, and daemon rates are far below contention).
type histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits
}

// Histogram is a fixed-bucket histogram handle. The zero value no-ops.
type Histogram struct{ h *histogram }

// Observe records v.
func (h Histogram) Observe(v float64) {
	if h.h == nil {
		return
	}
	i := 0
	for i < len(h.h.bounds) && v > h.h.bounds[i] {
		i++
	}
	h.h.buckets[i].Add(1)
	h.h.count.Add(1)
	addFloat(&h.h.sum, v)
}

// addFloat accumulates a float64 into bit-packed atomic storage.
func addFloat(cell *atomic.Uint64, v float64) {
	for {
		old := cell.Load()
		new := floatBits(bitsFloat(old) + v)
		if cell.CompareAndSwap(old, new) {
			return
		}
	}
}

// ExpBuckets returns n ascending bounds start, start*factor, ... — the usual
// latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// sortMetrics orders snapshot entries by (name, labels) so output is stable
// across registration order and across merges.
func sortMetrics(ms []SnapshotMetric) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		return labelKey(ms[i].Labels) < labelKey(ms[j].Labels)
	})
}
