package qolsr

// Advertised-set selection: the paper's FNBP contribution, the baselines it
// is compared against, and the name registry scenarios are composed from.

import (
	"qolsr/internal/core"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
)

type (
	// Selector computes a node's advertised neighbor set.
	Selector = core.Selector
	// FNBP is the paper's contribution (zero value = paper algorithm).
	FNBP = core.FNBP
	// Selection is FNBP's full outcome (ANS + forwarding assignments).
	Selection = core.Selection
	// LoopFixMode selects the Fig. 4 rule variant.
	LoopFixMode = core.LoopFixMode
	// TopologyFilter is the RNG-filtering QANS baseline.
	TopologyFilter = core.TopologyFilter
	// QOLSRAdapter uses an MPR heuristic's set as the advertised set.
	QOLSRAdapter = core.QOLSRAdapter
	// FullAdvertise advertises every neighbor (link-state upper bound).
	FullAdvertise = core.FullAdvertise
	// MPRHeuristic names an MPR selection rule.
	MPRHeuristic = mpr.Heuristic
)

// Loop-fix variants (see core.LoopFixMode).
const (
	LoopFixLiteral  = core.LoopFixLiteral
	LoopFixAdjacent = core.LoopFixAdjacent
	LoopFixOff      = core.LoopFixOff
)

// MPR heuristics.
const (
	MPRGreedy = mpr.Greedy
	MPRQOLSR1 = mpr.QOLSR1
	MPRQOLSR2 = mpr.QOLSR2
)

var (
	// SelectorByName resolves "fnbp", "topofilter", "qolsr" or "full".
	SelectorByName = core.ByName
	// SelectMPR computes an MPR set for a view.
	SelectMPR = mpr.Select
	// VerifyMPRCoverage checks the 2-hop coverage invariant.
	VerifyMPRCoverage = mpr.VerifyCoverage
)

// SelectFNBPLex runs FNBP under a lexicographic two-criterion cost, the
// paper's future-work extension (Sec. V).
func SelectFNBPLex(view *LocalView, lex Lexicographic, loopFix LoopFixMode) ([]int32, error) {
	return core.SelectFNBPSemiring[metric.LexCost](view, lex, loopFix)
}
