package qolsr

// QoS metrics: the additive/concave metric algebra links are weighted with,
// and the name registry scenarios are composed from.

import "qolsr/internal/metric"

type (
	// Metric is the QoS metric algebra (additive or concave).
	Metric = metric.Metric
	// Interval is the uniform link-weight law.
	Interval = metric.Interval
	// LexCost is a two-criterion lexicographic cost.
	LexCost = metric.LexCost
	// Lexicographic combines two metrics, primary deciding.
	Lexicographic = metric.Lexicographic
)

var (
	// Bandwidth is the concave bottleneck metric (maximize).
	Bandwidth = metric.Bandwidth
	// Delay is the additive metric (minimize).
	Delay = metric.Delay
	// Hop counts links.
	Hop = metric.Hop
	// Energy is the additive future-work metric.
	Energy = metric.Energy
	// MetricByName resolves "bandwidth", "delay", "hop" or "energy".
	MetricByName = metric.ByName
	// DefaultInterval is the paper-style weight law (integers 1..10).
	DefaultInterval = metric.DefaultInterval
)
