package qolsr

// The Scenario API: declarative dynamic-network programs — topology source,
// protocol configuration, a timeline of phases (mobility, link churn,
// partitions) and a probe-traffic workload — executed on the live protocol
// stack with measurements sampled at a fixed virtual-time cadence.
//
//	sc, err := qolsr.ScenarioByName("single-link-flap", "fnbp")
//	res, err := qolsr.RunScenario(ctx, sc, qolsr.WithRuns(5), qolsr.WithSeed(1))
//	...
//	res.WriteTable(os.Stdout)
//	res.EncodeJSON(os.Stdout)   // machine-readable ("qolsr-scenario/v1")
//
// For incremental consumption, StreamScenario delivers every measurement as
// it is taken while replicate runs execute in parallel:
//
//	events, wait := qolsr.NewRunner().StreamScenario(ctx, sc)
//	for ev := range events {
//		if ev.Kind == qolsr.ScenarioEventSample { plot(ev.Run, ev.Sample) }
//	}
//	res, err := wait()

import (
	"context"

	"qolsr/internal/runner"
	"qolsr/internal/scenario"
)

// Scenario definitions.
type (
	// Scenario is one declarative dynamic-network program.
	Scenario = scenario.Scenario
	// ScenarioTopology chooses where the scenario's nodes come from.
	ScenarioTopology = scenario.Topology
	// ScenarioProtocol configures the per-node stack.
	ScenarioProtocol = scenario.Protocol
	// ScenarioMedium selects the radio model a scenario runs on.
	ScenarioMedium = scenario.Medium
	// ScenarioMobility couples a scenario to a waypoint model.
	ScenarioMobility = scenario.Mobility
	// ScenarioTraffic is the probe workload.
	ScenarioTraffic = scenario.Traffic
	// ScenarioPhase is one timeline entry.
	ScenarioPhase = scenario.Phase
	// ScenarioAction is one timeline effect on the running network.
	ScenarioAction = scenario.Action
	// ScenarioDefinition is one named built-in scenario.
	ScenarioDefinition = scenario.Definition
)

// Timeline actions.
type (
	// ActionFailLink takes one named physical link down.
	ActionFailLink = scenario.FailLink
	// ActionRestoreLink brings one named physical link back.
	ActionRestoreLink = scenario.RestoreLink
	// ActionFailFraction fails a random fraction of the up links.
	ActionFailFraction = scenario.FailFraction
	// ActionFailRandom fails a fixed number of random up links.
	ActionFailRandom = scenario.FailRandom
	// ActionRestoreAll brings every failed link back.
	ActionRestoreAll = scenario.RestoreAll
	// ActionPartition splits the network along the field midline.
	ActionPartition = scenario.Partition
	// ActionSetLoss replaces the lossy medium's base packet-error rate.
	ActionSetLoss = scenario.SetLoss
	// ActionDegradeLink overrides one physical link's packet-error rate.
	ActionDegradeLink = scenario.DegradeLink
)

// Scenario results.
type (
	// ScenarioSample is one measurement at one virtual time of one run.
	ScenarioSample = scenario.Sample
	// ScenarioRunResult is one replicate run of a scenario.
	ScenarioRunResult = scenario.RunResult
	// ScenarioReconvergence reports recovery from one disruptive phase.
	ScenarioReconvergence = scenario.Reconvergence
	// ScenarioResult is a completed scenario execution with table/CSV/JSON
	// encoders (schema "qolsr-scenario/v1").
	ScenarioResult = scenario.Result
	// ScenarioAggregate accumulates one sample time across runs.
	ScenarioAggregate = scenario.AggregateSample
	// ScenarioEvent is one incremental scenario outcome (see
	// StreamScenario).
	ScenarioEvent = runner.ScenarioEvent
	// ScenarioEventKind discriminates scenario stream events.
	ScenarioEventKind = runner.ScenarioEventKind
)

// Scenario stream event kinds.
const (
	// ScenarioEventSample reports one measurement of one run.
	ScenarioEventSample = runner.ScenarioEventSample
	// ScenarioEventRun reports one completed replicate run.
	ScenarioEventRun = runner.ScenarioEventRun
)

// Scenario registry: built-ins resolve by name, parameterised by
// advertised-set selector, so CLI and config-file users never touch code.
var (
	// BuiltInScenarios returns the built-in scenario registry.
	BuiltInScenarios = scenario.BuiltIn
	// ScenarioNames lists the built-in scenario names.
	ScenarioNames = scenario.Names
	// ScenarioByName materialises a built-in scenario for one selector
	// ("fnbp", "topofilter", "qolsr" or "full"; empty means "fnbp").
	ScenarioByName = scenario.ByName
	// ExecuteScenarioRun runs one replicate directly, without the runner
	// (useful for custom harnesses; RunScenario is the usual entry).
	ExecuteScenarioRun = scenario.Execute
)

// RunScenario executes the scenario's replicate runs to completion under
// ctx. WithWorkers, WithRuns (default 3 — the live stack is costly per
// replicate), WithSeed and WithProgress apply; for a fixed seed the result
// is bit-identical regardless of the worker budget.
func RunScenario(ctx context.Context, sc Scenario, opts ...Option) (*ScenarioResult, error) {
	return NewRunner(opts...).RunScenario(ctx, sc)
}

// RunScenario executes the scenario to completion under the runner's
// options. See the package-level RunScenario.
func (r *Runner) RunScenario(ctx context.Context, sc Scenario) (*ScenarioResult, error) {
	return runner.RunScenario(ctx, sc, r.opts)
}

// StreamScenario starts the scenario and returns the event channel plus a
// wait function yielding the final result. The channel is buffered for the
// whole execution and closed when done. Events from different replicate
// runs interleave arbitrarily; their Run index locates them.
func (r *Runner) StreamScenario(ctx context.Context, sc Scenario) (<-chan ScenarioEvent, func() (*ScenarioResult, error)) {
	return runner.StreamScenario(ctx, sc, r.opts)
}
