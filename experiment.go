package qolsr

// The Experiment/Runner API: compose density sweeps from figures (by value
// or by name), run them as cancellable parallel pipelines, stream results
// point by point, and encode them as tables, CSV or JSON.
//
//	exp := qolsr.PaperExperiment()
//	res, err := exp.Run(ctx, qolsr.WithRuns(100), qolsr.WithWorkers(8),
//		qolsr.WithProgress(log.Printf))
//	...
//	res.EncodeJSON(os.Stdout)
//
// For incremental consumption, Stream delivers every completed density
// point (and every assembled figure) on a channel while the sweep is still
// running:
//
//	events, wait := exp.Stream(ctx)
//	for ev := range events {
//		if ev.Kind == qolsr.EventPoint { plot(ev.Degree, ev.Point) }
//	}
//	res, err := wait()

import (
	"context"

	"qolsr/internal/eval"
	"qolsr/internal/runner"
)

// Experiment definitions.
type (
	// Figure describes one density sweep: metric, axis, quantity and the
	// compared protocols.
	Figure = eval.Figure
	// Quantity selects which measured series a figure reports.
	Quantity = eval.Quantity
	// PointScenario is one density point, ready for RunPoint. (The name
	// Scenario belongs to the dynamic-network scenario programs of
	// scenario.go.)
	PointScenario = eval.Scenario
	// PointResult is one density point's outcome.
	PointResult = eval.PointResult
	// ProtocolPoint aggregates one protocol's behaviour at one density.
	ProtocolPoint = eval.ProtocolPoint
	// FigureResult is an assembled figure: one PointResult per density.
	FigureResult = eval.FigureResult
	// ProtocolSpec binds a selector to a routing policy.
	ProtocolSpec = eval.ProtocolSpec
	// ControlSweepOptions configures the A4 control-traffic experiment.
	ControlSweepOptions = eval.ControlSweepOptions
	// ControlSweepResult is Runner.ControlSweep's outcome.
	ControlSweepResult = eval.ControlSweepResult
	// LossSweepOptions configures the A7 delivery-vs-loss experiment.
	LossSweepOptions = eval.LossSweepOptions
	// LossSweepResult is Runner.LossSweep's outcome.
	LossSweepResult = eval.LossSweepResult
	// ScaleSweepOptions configures the S1 node-count scaling experiment.
	ScaleSweepOptions = eval.ScaleSweepOptions
	// ScaleSweepResult is Runner.ScaleSweep's outcome.
	ScaleSweepResult = eval.ScaleSweepResult
	// OverheadSweepOptions configures the O1 overhead-vs-density experiment.
	OverheadSweepOptions = eval.OverheadSweepOptions
	// OverheadSweepResult is Runner.OverheadSweep's outcome.
	OverheadSweepResult = eval.OverheadSweepResult
	// Results is a completed sweep with table/CSV/JSON encoders.
	Results = runner.Result
	// Event is one incremental sweep outcome (see Stream).
	Event = runner.Event
	// EventKind discriminates stream events.
	EventKind = runner.EventKind
)

// Reported quantities.
const (
	QuantitySetSize          = eval.QuantitySetSize
	QuantityOverhead         = eval.QuantityOverhead
	QuantityDelivery         = eval.QuantityDelivery
	QuantityDirectedDelivery = eval.QuantityDirectedDelivery
)

// Stream event kinds.
const (
	// EventPoint reports one completed density point.
	EventPoint = runner.EventPoint
	// EventFigure reports a fully assembled figure.
	EventFigure = runner.EventFigure
)

// Figure and protocol registries: everything an experiment is composed
// from resolves by name, so CLI and config-file users never touch code.
var (
	// PaperFigures returns Figs. 6-9 with the paper's parameters.
	PaperFigures = eval.PaperFigures
	// FigureByID resolves "fig6".."fig9".
	FigureByID = eval.FigureByID
	// Ablations returns the repository's ablation sweeps.
	Ablations = eval.Ablations
	// SweepByID resolves a figure or ablation by ID (ablations also
	// answer to their short form, e.g. "loopfix").
	SweepByID = eval.SweepByID
	// SweepIDs lists every composable sweep ID.
	SweepIDs = eval.SweepIDs
	// QuantityByName resolves a quantity's string form.
	QuantityByName = eval.QuantityByName
	// QuantityNames lists every reportable quantity's string form.
	QuantityNames = eval.QuantityNames
	// PaperProtocols returns the paper's three curves.
	PaperProtocols = eval.PaperProtocols
	// LoopFixAblation compares loop-fix variants (A1).
	LoopFixAblation = eval.LoopFixAblation
	// LocalLinksAblation measures source-local-link routing (A2).
	LocalLinksAblation = eval.LocalLinksAblation
	// RoutingPolicyAblation contrasts QOLSR routing readings (A6).
	RoutingPolicyAblation = eval.RoutingPolicyAblation
	// UpperBoundProtocols adds the full link-state bound.
	UpperBoundProtocols = eval.UpperBoundProtocols
	// MPRHeuristicAblation compares MPR heuristics as advertised sets.
	MPRHeuristicAblation = eval.MPRHeuristicAblation
)

// RunPoint evaluates protocols on independent topologies at one density.
// It honours ctx and parallelizes runs up to Scenario.Workers.
var RunPoint = eval.RunPoint

// Option tunes how a Runner executes an experiment.
type Option func(*runner.Options)

// WithWorkers bounds the total parallelism budget, shared between
// concurrent density points and the runs inside each point. The default is
// GOMAXPROCS; results are identical for any value.
func WithWorkers(n int) Option {
	return func(o *runner.Options) { o.Workers = n }
}

// WithRuns sets the per-point run count (default 100, the paper's).
func WithRuns(n int) Option {
	return func(o *runner.Options) { o.Runs = n }
}

// WithSeed sets the base RNG seed (default 1). Every run's stream is
// derived from (seed, degree, run), so a seed pins the whole sweep.
func WithSeed(seed int64) Option {
	return func(o *runner.Options) { o.Seed = seed }
}

// WithProgress installs a printf-style callback receiving one line per
// completed density point.
func WithProgress(f func(format string, args ...any)) Option {
	return func(o *runner.Options) { o.Progress = f }
}

// WithQuantities selects the series the JSON/CSV encoders emit per
// protocol; the default is each figure's own quantity.
func WithQuantities(qs ...Quantity) Option {
	return func(o *runner.Options) { o.Quantities = append([]Quantity(nil), qs...) }
}

// WithWeightInterval overrides the uniform link-weight law (default [1,10]).
func WithWeightInterval(iv Interval) Option {
	return func(o *runner.Options) { o.WeightInterval = iv }
}

// WithDegrees overrides every figure's density axis.
func WithDegrees(degrees ...float64) Option {
	return func(o *runner.Options) { o.Degrees = append([]float64(nil), degrees...) }
}

// Experiment is a composed set of figures to sweep. The zero value is
// empty; compose with NewExperiment, PaperExperiment or ExperimentByID.
type Experiment struct {
	figures []Figure
}

// NewExperiment composes an experiment from figure definitions.
func NewExperiment(figs ...Figure) *Experiment {
	return (&Experiment{}).Add(figs...)
}

// PaperExperiment returns the paper's full evaluation: Figs. 6-9.
func PaperExperiment() *Experiment {
	return NewExperiment(PaperFigures()...)
}

// ExperimentByID composes an experiment from sweep IDs ("fig6".."fig9",
// ablation IDs, or ablation short forms).
func ExperimentByID(ids ...string) (*Experiment, error) {
	e := &Experiment{}
	for _, id := range ids {
		fig, err := SweepByID(id)
		if err != nil {
			return nil, err
		}
		e.Add(fig)
	}
	return e, nil
}

// Add appends figures and returns the experiment for chaining.
func (e *Experiment) Add(figs ...Figure) *Experiment {
	e.figures = append(e.figures, figs...)
	return e
}

// Figures returns the composed figure definitions.
func (e *Experiment) Figures() []Figure {
	return append([]Figure(nil), e.figures...)
}

// Run executes the experiment to completion under ctx.
func (e *Experiment) Run(ctx context.Context, opts ...Option) (*Results, error) {
	return NewRunner(opts...).Run(ctx, e)
}

// Stream starts the experiment and returns the event channel plus a wait
// function yielding the final result. See Runner.Stream.
func (e *Experiment) Stream(ctx context.Context, opts ...Option) (<-chan Event, func() (*Results, error)) {
	return NewRunner(opts...).Stream(ctx, e)
}

// Runner executes experiments with a fixed option set, so one
// configuration (workers, seed, runs, progress sink) can drive many
// experiments.
type Runner struct {
	opts runner.Options
}

// NewRunner binds options into a reusable runner.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{}
	for _, opt := range opts {
		opt(&r.opts)
	}
	return r
}

// Run executes the experiment to completion. Cancelling ctx stops
// outstanding work promptly and returns ctx.Err(). For a fixed seed the
// result is bit-identical regardless of WithWorkers.
func (r *Runner) Run(ctx context.Context, e *Experiment) (*Results, error) {
	return runner.Run(ctx, e.figures, r.opts)
}

// Stream starts the experiment and returns the event channel plus a wait
// function that blocks until completion and yields the final result. The
// channel is buffered for the whole sweep and closed when done. Point
// events may arrive out of density order; their indexes locate them.
func (r *Runner) Stream(ctx context.Context, e *Experiment) (<-chan Event, func() (*Results, error)) {
	return runner.Stream(ctx, e.figures, r.opts)
}

// ControlSweep measures control-plane cost per selector and density on the
// live protocol stack (experiment A4), honouring ctx and the runner's
// seed/runs/degrees options where the sweep's own are unset.
func (r *Runner) ControlSweep(ctx context.Context, opts ControlSweepOptions) (*ControlSweepResult, error) {
	if opts.Seed == 0 {
		opts.Seed = r.opts.Seed
	}
	if opts.Runs <= 0 && r.opts.Runs > 0 {
		// The live stack is ~20x costlier per run than the offline
		// harness; scale the figure-run default down accordingly.
		opts.Runs = max(1, r.opts.Runs/20)
	}
	if len(opts.Degrees) == 0 {
		opts.Degrees = r.opts.Degrees
	}
	return eval.RunControlSweep(ctx, opts)
}

// LossSweep measures data-plane delivery against medium packet loss on the
// live protocol stack (experiment A7), comparing oracle link weights with
// measured link quality. It honours ctx and the runner's seed/runs options
// where the sweep's own are unset.
func (r *Runner) LossSweep(ctx context.Context, opts LossSweepOptions) (*LossSweepResult, error) {
	if opts.Seed == 0 {
		opts.Seed = r.opts.Seed
	}
	if opts.Runs <= 0 && r.opts.Runs > 0 {
		// Same live-stack cost scaling as ControlSweep.
		opts.Runs = max(1, r.opts.Runs/20)
	}
	return eval.RunLossSweep(ctx, opts)
}

// ScaleSweep measures simulator throughput against node count on the live
// protocol stack (experiment S1): fields of growing population at constant
// density, reporting wall time, events executed and event throughput per
// point. It honours ctx and the runner's seed where the sweep's own is
// unset; Runs defaults to 1 — the axis is engine cost, not protocol
// statistics.
func (r *Runner) ScaleSweep(ctx context.Context, opts ScaleSweepOptions) (*ScaleSweepResult, error) {
	if opts.Seed == 0 {
		opts.Seed = r.opts.Seed
	}
	return eval.RunScaleSweep(ctx, opts)
}

// OverheadSweep measures control overhead against density per control-plane
// optimisation on the live protocol stack (experiment O1): the original
// QOLSR plane against delta TCs, fish-eye scoping, min-cover flood relays,
// and all three together — same fields, same seeds. It honours ctx and the
// runner's seed/runs/degrees options where the sweep's own are unset.
func (r *Runner) OverheadSweep(ctx context.Context, opts OverheadSweepOptions) (*OverheadSweepResult, error) {
	if opts.Seed == 0 {
		opts.Seed = r.opts.Seed
	}
	if opts.Runs <= 0 && r.opts.Runs > 0 {
		// Same live-stack cost scaling as ControlSweep, times five variants.
		opts.Runs = max(1, r.opts.Runs/20)
	}
	if len(opts.Degrees) == 0 {
		opts.Degrees = r.opts.Degrees
	}
	return eval.RunOverheadSweep(ctx, opts)
}
