package qolsr

// Graph substrate and network generation: the weighted unit-disk topologies
// every selection algorithm and experiment runs on.

import (
	"math/rand"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/netgen"
)

type (
	// Graph is an undirected graph with multi-channel edge weights.
	Graph = graph.Graph
	// NodeID is a node's external identifier, used by the selection
	// tie-breaks.
	NodeID = graph.NodeID
	// LocalView is the two-hop partial topology G_u a node operates on.
	LocalView = graph.LocalView
	// FirstHops holds optimal path values and fP(u,v) first-hop sets.
	FirstHops = graph.FirstHops
	// ShortestPaths is a Dijkstra result.
	ShortestPaths = graph.ShortestPaths
	// DOTOptions controls Graphviz rendering.
	DOTOptions = graph.DOTOptions
)

// NewGraph returns a graph of n isolated nodes with sequential IDs.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewGraphWithIDs returns a graph whose nodes carry the given unique IDs.
func NewGraphWithIDs(ids []NodeID) (*Graph, error) { return graph.NewWithIDs(ids) }

// NewLocalView computes the two-hop local view of u in g.
func NewLocalView(g *Graph, u int32) *LocalView { return graph.NewLocalView(g, u) }

// Dijkstra computes optimal path values from src under m (see
// graph.Dijkstra for the view/exclude semantics).
func Dijkstra(g *Graph, m Metric, w []float64, src int32, view *LocalView, exclude int32) *ShortestPaths {
	return graph.Dijkstra(g, m, w, src, view, exclude)
}

// ComputeFirstHops computes B̃W/D̃ values and fP(u,v) sets for a view.
func ComputeFirstHops(view *LocalView, m Metric, w []float64) (*FirstHops, error) {
	return graph.ComputeFirstHops(view, m, w)
}

// DijkstraLex computes lexicographic two-criterion optimal paths from src
// (e.g. widest, then energy-cheapest). See graph.DijkstraGeneric.
func DijkstraLex(g *Graph, lex Lexicographic, src int32, view *LocalView, exclude int32) (*LexSearch, error) {
	return graph.DijkstraGeneric[metric.LexCost](g, lex, src, view, exclude)
}

// LexSearch is the result of DijkstraLex.
type LexSearch = graph.GenericSearch[metric.LexCost]

// WriteDOT renders g in Graphviz DOT form.
var WriteDOT = graph.WriteDOT

// Deployment and network generation.
type (
	// Deployment is a Poisson point process deployment.
	Deployment = geom.Deployment
	// Field is the deployment area.
	Field = geom.Field
	// Point is a node position.
	Point = geom.Point
)

var (
	// PaperDeployment returns the paper's 1000×1000, R=100 deployment at
	// a target mean degree.
	PaperDeployment = geom.PaperDeployment
	// BuildNetwork samples a deployment into a weighted unit-disk graph.
	BuildNetwork = netgen.Build
	// NetworkFromPoints builds the weighted unit-disk graph of fixed
	// positions.
	NetworkFromPoints = netgen.FromPoints
	// PickConnectedPair draws a random connected (source, destination).
	PickConnectedPair = netgen.PickConnectedPair
)

// UniformWeights draws i.i.d. weights from iv onto a graph channel.
func UniformWeights(g *Graph, channel string, iv Interval, rng *rand.Rand) error {
	return g.AssignUniformWeights(channel, iv, rng)
}
