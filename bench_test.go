package qolsr_test

// The benchmarks in this file regenerate the paper's tables/figures at
// reduced run counts (benchmarks are for shape and speed tracking; use
// cmd/qolsr-sim for full 100-run reproductions) and measure the hot
// algorithms in isolation.
//
// Figure benches report the measured series via b.ReportMetric, so
// `go test -bench Figure -benchmem` prints the same quantities the paper
// plots.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"qolsr"
	"qolsr/internal/olsr"
)

// benchFigure runs a reduced version of a paper figure once per iteration
// through the Experiment API and reports the last result's series.
func benchFigure(b *testing.B, id string) {
	fig, err := qolsr.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// Reduced axis: first, middle, last density.
	degrees := []float64{fig.Degrees[0], fig.Degrees[2], fig.Degrees[len(fig.Degrees)-1]}
	exp := qolsr.NewExperiment(fig)
	var res *qolsr.FigureResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := exp.Run(context.Background(),
			qolsr.WithRuns(3), qolsr.WithSeed(int64(i)+1), qolsr.WithDegrees(degrees...))
		if err != nil {
			b.Fatal(err)
		}
		res = out.Figures[0]
	}
	b.StopTimer()
	for pi, deg := range degrees {
		for _, name := range res.ProtocolNames() {
			metricName := fmt.Sprintf("%s_d%g", name, deg)
			b.ReportMetric(res.Value(pi, name), metricName)
		}
	}
}

// BenchmarkSweep measures the parallel point-level runner end to end: a
// two-figure experiment whose density points and runs share one worker
// budget. Track this number to catch sweep-throughput regressions.
func BenchmarkSweep(b *testing.B) {
	fig6, err := qolsr.FigureByID("fig6")
	if err != nil {
		b.Fatal(err)
	}
	fig8, err := qolsr.FigureByID("fig8")
	if err != nil {
		b.Fatal(err)
	}
	exp := qolsr.NewExperiment(fig6, fig8)
	var points int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(context.Background(),
			qolsr.WithRuns(3), qolsr.WithSeed(1), qolsr.WithDegrees(10, 15, 20))
		if err != nil {
			b.Fatal(err)
		}
		points = 0
		for _, fr := range res.Figures {
			points += len(fr.Points)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(points), "points")
}

// BenchmarkFigure6 regenerates Fig. 6: advertised-set size vs density under
// the bandwidth metric.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFigure7 regenerates Fig. 7: advertised-set size vs density under
// the delay metric.
func BenchmarkFigure7(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFigure8 regenerates Fig. 8: bandwidth overhead vs density.
func BenchmarkFigure8(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFigure9 regenerates Fig. 9: delay overhead vs density.
func BenchmarkFigure9(b *testing.B) { benchFigure(b, "fig9") }

// benchNetwork builds one paper-style deployment for the micro benches.
func benchNetwork(b *testing.B, degree float64, channel string) *qolsr.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	dep := qolsr.Deployment{Field: qolsr.Field{Width: 600, Height: 600}, Radius: 100, Degree: degree}
	g, err := qolsr.BuildNetwork(dep, channel, qolsr.DefaultInterval(), rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchSelector measures one selector over every node of a fixed field.
func benchSelector(b *testing.B, sel qolsr.Selector, m qolsr.Metric, degree float64) {
	g := benchNetwork(b, degree, m.Name())
	w, err := g.Weights(m.Name())
	if err != nil {
		b.Fatal(err)
	}
	views := make([]*qolsr.LocalView, g.N())
	for u := range views {
		views[u] = qolsr.NewLocalView(g, int32(u))
	}
	var setSize int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setSize = 0
		for _, view := range views {
			ans, err := sel.Select(view, m, w)
			if err != nil {
				b.Fatal(err)
			}
			setSize += len(ans)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(setSize)/float64(g.N()), "links/node")
	b.ReportMetric(float64(g.N()), "nodes")
}

// BenchmarkFNBPFast measures the paper's algorithm with the fast first-hop
// computation (ablation A3, fast side).
func BenchmarkFNBPFast(b *testing.B) {
	for _, m := range []qolsr.Metric{qolsr.Bandwidth(), qolsr.Delay()} {
		b.Run(m.Name(), func(b *testing.B) {
			benchSelector(b, qolsr.FNBP{}, m, 15)
		})
	}
}

// BenchmarkFNBPReference measures the definition-level first-hop oracle
// (ablation A3, slow side).
func BenchmarkFNBPReference(b *testing.B) {
	for _, m := range []qolsr.Metric{qolsr.Bandwidth(), qolsr.Delay()} {
		b.Run(m.Name(), func(b *testing.B) {
			benchSelector(b, qolsr.FNBP{UseReference: true}, m, 15)
		})
	}
}

// BenchmarkTopologyFilter measures the RNG-filtering baseline.
func BenchmarkTopologyFilter(b *testing.B) {
	benchSelector(b, qolsr.TopologyFilter{}, qolsr.Bandwidth(), 15)
}

// BenchmarkQOLSRMPR2 measures the original QOLSR selection.
func BenchmarkQOLSRMPR2(b *testing.B) {
	benchSelector(b, qolsr.QOLSRAdapter{Heuristic: qolsr.MPRQOLSR2}, qolsr.Bandwidth(), 15)
}

// BenchmarkAblationLoopFix compares set sizes across loop-fix variants
// (ablation A1).
func BenchmarkAblationLoopFix(b *testing.B) {
	for _, spec := range qolsr.LoopFixAblation() {
		b.Run(spec.Name, func(b *testing.B) {
			benchSelector(b, spec.Selector, qolsr.Bandwidth(), 15)
		})
	}
}

// BenchmarkAblationLocalLinks measures routing overhead with and without
// the source's local links (ablation A2).
func BenchmarkAblationLocalLinks(b *testing.B) {
	sc := qolsr.PointScenario{
		Deployment:     qolsr.PaperDeployment(15),
		Metric:         qolsr.Bandwidth(),
		WeightInterval: qolsr.DefaultInterval(),
		Runs:           3,
		Seed:           9,
	}
	var res *qolsr.PointResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = qolsr.RunPoint(context.Background(), sc, qolsr.LocalLinksAblation())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for name, pp := range res.Protocols {
		b.ReportMetric(pp.Overhead.Mean(), "overhead_"+name)
	}
}

// BenchmarkDijkstra measures the generalized search on a paper-scale field.
func BenchmarkDijkstra(b *testing.B) {
	for _, m := range []qolsr.Metric{qolsr.Bandwidth(), qolsr.Delay()} {
		b.Run(m.Name(), func(b *testing.B) {
			g := benchNetwork(b, 20, m.Name())
			w, err := g.Weights(m.Name())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := qolsr.Dijkstra(g, m, w, int32(i%g.N()), nil, -1)
				if len(sp.Reached) == 0 {
					b.Fatal("no nodes reached")
				}
			}
		})
	}
}

// BenchmarkFirstHops measures the per-node fP computation, the inner loop
// of FNBP.
func BenchmarkFirstHops(b *testing.B) {
	for _, m := range []qolsr.Metric{qolsr.Bandwidth(), qolsr.Delay()} {
		b.Run(m.Name(), func(b *testing.B) {
			g := benchNetwork(b, 20, m.Name())
			w, err := g.Weights(m.Name())
			if err != nil {
				b.Fatal(err)
			}
			views := make([]*qolsr.LocalView, g.N())
			for u := range views {
				views[u] = qolsr.NewLocalView(g, int32(u))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := qolsr.ComputeFirstHops(views[i%len(views)], m, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHelloCodec measures HELLO wire encoding and decoding.
func BenchmarkHelloCodec(b *testing.B) {
	h := &olsr.Hello{Origin: 12345, Seq: 7}
	for i := 0; i < 20; i++ {
		h.Links = append(h.Links, olsr.LinkInfo{Neighbor: int64(i), Weight: float64(i) + 0.5})
	}
	h.MPRs = []int64{1, 3, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := olsr.MarshalHello(h)
		if _, err := olsr.UnmarshalHello(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCCodec measures TC wire encoding and decoding.
func BenchmarkTCCodec(b *testing.B) {
	tc := &olsr.TC{Origin: 9, ANSN: 3, Seq: 4}
	for i := 0; i < 5; i++ {
		tc.Links = append(tc.Links, olsr.LinkInfo{Neighbor: int64(i), Weight: 2.5})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := olsr.MarshalTC(tc)
		if _, err := olsr.UnmarshalTC(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControlOverhead runs the live protocol stack per selector and
// reports control bytes per simulated second (experiment A4): TC cost
// follows the advertised-set sizes of Figs. 6-7.
func BenchmarkControlOverhead(b *testing.B) {
	selectors := []qolsr.Selector{
		qolsr.FNBP{},
		qolsr.TopologyFilter{},
		qolsr.QOLSRAdapter{Heuristic: qolsr.MPRQOLSR2},
	}
	for _, sel := range selectors {
		b.Run(sel.Name(), func(b *testing.B) {
			m := qolsr.Bandwidth()
			g := benchNetwork(b, 12, m.Name())
			var rate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := qolsr.DefaultProtocolConfig(m)
				cfg.Selector = sel
				nw, err := qolsr.NewNetwork(g, cfg, qolsr.NetworkOptions{Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				nw.Start()
				nw.Run(20 * time.Second)
				rate = nw.ControlBytesPerSecond()
			}
			b.StopTimer()
			b.ReportMetric(rate, "ctrlB/s")
		})
	}
}

// BenchmarkScenario measures the scenario engine end to end: one built-in
// scenario program (single-link-flap) scaled down to a small explicit
// topology and a short horizon, one replicate per iteration. Track this
// number to catch scenario-engine throughput regressions.
func BenchmarkScenario(b *testing.B) {
	sc, err := qolsr.ScenarioByName("single-link-flap", "fnbp")
	if err != nil {
		b.Fatal(err)
	}
	// Small N: a 3×4 grid of explicit positions instead of the built-in's
	// ~115-node Poisson field, with a proportionally shorter timeline.
	var pts []qolsr.Point
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			pts = append(pts, qolsr.Point{X: 30 + 80*float64(c), Y: 30 + 80*float64(r)})
		}
	}
	sc.Topology = qolsr.ScenarioTopology{Points: pts, Field: qolsr.Field{Width: 400, Height: 300}, Radius: 100}
	sc.Duration = 40 * time.Second
	sc.Warmup = 16 * time.Second
	sc.Phases = []qolsr.ScenarioPhase{
		{At: 21 * time.Second, Action: qolsr.ActionFailRandom{Count: 1}},
		{At: 31 * time.Second, Action: qolsr.ActionRestoreAll{}},
	}
	var res *qolsr.ScenarioResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = qolsr.RunScenario(context.Background(), sc,
			qolsr.WithRuns(1), qolsr.WithSeed(int64(i)+1), qolsr.WithWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	agg := res.Aggregate()
	last := agg[len(agg)-1]
	b.ReportMetric(float64(len(agg)), "samples")
	b.ReportMetric(last.Delivery.Mean(), "delivery")
}

// BenchmarkDataplaneForwarding measures the data-plane hot path: a converged
// paper-scale network forwards one full delivery sweep (every node sends one
// packet to the sink) per iteration. Each hop consults the arrival node's
// routing table, so this benchmark tracks the cost of table lookups under a
// steady control plane — the path the scenario engine's probe flows and the
// delivery experiments live on.
func BenchmarkDataplaneForwarding(b *testing.B) {
	m := qolsr.Bandwidth()
	g := benchNetwork(b, 15, m.Name())
	cfg := qolsr.DefaultProtocolConfig(m)
	nw, err := qolsr.NewNetwork(g, cfg, qolsr.NetworkOptions{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	nw.Start()
	nw.Run(30 * time.Second)
	b.ReportMetric(float64(g.N()), "nodes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ratio := nw.DeliverySweep(0); ratio == 0 {
			b.Fatal("nothing delivered")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(nw.Data.Delivered)/float64(nw.Data.Sent), "delivery")
}

// BenchmarkProtocolConvergence measures wall time to simulate 30 virtual
// seconds of the full stack.
func BenchmarkProtocolConvergence(b *testing.B) {
	m := qolsr.Bandwidth()
	g := benchNetwork(b, 10, m.Name())
	cfg := qolsr.DefaultProtocolConfig(m)
	for i := 0; i < b.N; i++ {
		nw, err := qolsr.NewNetwork(g, cfg, qolsr.NetworkOptions{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		nw.Start()
		nw.Run(30 * time.Second)
	}
}
