package qolsr

import (
	"math/rand"

	"qolsr/internal/core"
	"qolsr/internal/eval"
	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
	"qolsr/internal/route"
	"qolsr/internal/sim"
)

// Graph substrate.
type (
	// Graph is an undirected graph with multi-channel edge weights.
	Graph = graph.Graph
	// NodeID is a node's external identifier, used by the selection
	// tie-breaks.
	NodeID = graph.NodeID
	// LocalView is the two-hop partial topology G_u a node operates on.
	LocalView = graph.LocalView
	// FirstHops holds optimal path values and fP(u,v) first-hop sets.
	FirstHops = graph.FirstHops
	// ShortestPaths is a Dijkstra result.
	ShortestPaths = graph.ShortestPaths
	// DOTOptions controls Graphviz rendering.
	DOTOptions = graph.DOTOptions
)

// NewGraph returns a graph of n isolated nodes with sequential IDs.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewGraphWithIDs returns a graph whose nodes carry the given unique IDs.
func NewGraphWithIDs(ids []NodeID) (*Graph, error) { return graph.NewWithIDs(ids) }

// NewLocalView computes the two-hop local view of u in g.
func NewLocalView(g *Graph, u int32) *LocalView { return graph.NewLocalView(g, u) }

// Dijkstra computes optimal path values from src under m (see
// graph.Dijkstra for the view/exclude semantics).
func Dijkstra(g *Graph, m Metric, w []float64, src int32, view *LocalView, exclude int32) *ShortestPaths {
	return graph.Dijkstra(g, m, w, src, view, exclude)
}

// ComputeFirstHops computes B̃W/D̃ values and fP(u,v) sets for a view.
func ComputeFirstHops(view *LocalView, m Metric, w []float64) (*FirstHops, error) {
	return graph.ComputeFirstHops(view, m, w)
}

// WriteDOT renders g in Graphviz DOT form.
var WriteDOT = graph.WriteDOT

// Metrics.
type (
	// Metric is the QoS metric algebra (additive or concave).
	Metric = metric.Metric
	// Interval is the uniform link-weight law.
	Interval = metric.Interval
	// Semiring generalises Metric for multi-criterion costs.
	LexCost = metric.LexCost
	// Lexicographic combines two metrics, primary deciding.
	Lexicographic = metric.Lexicographic
)

// Built-in metrics.
var (
	// Bandwidth is the concave bottleneck metric (maximize).
	Bandwidth = metric.Bandwidth
	// Delay is the additive metric (minimize).
	Delay = metric.Delay
	// Hop counts links.
	Hop = metric.Hop
	// Energy is the additive future-work metric.
	Energy = metric.Energy
	// MetricByName resolves "bandwidth", "delay", "hop" or "energy".
	MetricByName = metric.ByName
	// DefaultInterval is the paper-style weight law (integers 1..10).
	DefaultInterval = metric.DefaultInterval
)

// Deployment and network generation.
type (
	// Deployment is a Poisson point process deployment.
	Deployment = geom.Deployment
	// Field is the deployment area.
	Field = geom.Field
	// Point is a node position.
	Point = geom.Point
)

var (
	// PaperDeployment returns the paper's 1000×1000, R=100 deployment at
	// a target mean degree.
	PaperDeployment = geom.PaperDeployment
	// BuildNetwork samples a deployment into a weighted unit-disk graph.
	BuildNetwork = netgen.Build
	// NetworkFromPoints builds the weighted unit-disk graph of fixed
	// positions.
	NetworkFromPoints = netgen.FromPoints
	// PickConnectedPair draws a random connected (source, destination).
	PickConnectedPair = netgen.PickConnectedPair
)

// Selection algorithms.
type (
	// Selector computes a node's advertised neighbor set.
	Selector = core.Selector
	// FNBP is the paper's contribution (zero value = paper algorithm).
	FNBP = core.FNBP
	// Selection is FNBP's full outcome (ANS + forwarding assignments).
	Selection = core.Selection
	// LoopFixMode selects the Fig. 4 rule variant.
	LoopFixMode = core.LoopFixMode
	// TopologyFilter is the RNG-filtering QANS baseline.
	TopologyFilter = core.TopologyFilter
	// QOLSRAdapter uses an MPR heuristic's set as the advertised set.
	QOLSRAdapter = core.QOLSRAdapter
	// FullAdvertise advertises every neighbor (link-state upper bound).
	FullAdvertise = core.FullAdvertise
	// MPRHeuristic names an MPR selection rule.
	MPRHeuristic = mpr.Heuristic
)

// Loop-fix variants (see core.LoopFixMode).
const (
	LoopFixLiteral  = core.LoopFixLiteral
	LoopFixAdjacent = core.LoopFixAdjacent
	LoopFixOff      = core.LoopFixOff
)

// MPR heuristics.
const (
	MPRGreedy = mpr.Greedy
	MPRQOLSR1 = mpr.QOLSR1
	MPRQOLSR2 = mpr.QOLSR2
)

var (
	// SelectorByName resolves "fnbp", "topofilter", "qolsr" or "full".
	SelectorByName = core.ByName
	// SelectMPR computes an MPR set for a view.
	SelectMPR = mpr.Select
	// VerifyMPRCoverage checks the 2-hop coverage invariant.
	VerifyMPRCoverage = mpr.VerifyCoverage
)

// Routing evaluation.
type (
	// RoutePolicy selects the routing behaviour over advertised links.
	RoutePolicy = route.Policy
	// PairEval is the outcome of routing one pair.
	PairEval = route.PairEval
)

// Routing policies.
const (
	QoSOptimal    = route.QoSOptimal
	MinHopThenQoS = route.MinHopThenQoS
)

var (
	// BuildAdvertised materialises the network-wide advertised topology.
	BuildAdvertised = route.BuildAdvertised
	// EvaluatePair routes one pair and compares with the optimum.
	EvaluatePair = route.EvaluatePair
	// Overhead computes the paper's relative regret.
	Overhead = route.Overhead
	// Forward walks hop-by-hop next-hop decisions.
	Forward = route.Forward
)

// Protocol stack.
type (
	// ProtocolConfig parameterises an OLSR/QOLSR node.
	ProtocolConfig = olsr.Config
	// ProtocolNode is one protocol state machine.
	ProtocolNode = olsr.Node
	// Route is one protocol routing-table entry.
	Route = olsr.Route
	// Network runs a protocol instance per node over the event
	// simulator.
	Network = sim.Network
	// NetworkOptions tunes the simulation harness.
	NetworkOptions = sim.NetworkOptions
	// TrafficStats accounts control traffic.
	TrafficStats = sim.TrafficStats
	// Waypoint is the random-waypoint mobility model.
	Waypoint = geom.Waypoint
	// Mobility advances node positions in virtual time.
	Mobility = geom.Mobility
	// MobileSim couples the protocol network to a mobility model.
	MobileSim = sim.MobileSim
)

var (
	// DefaultProtocolConfig returns RFC-style timers with FNBP selection.
	DefaultProtocolConfig = olsr.DefaultConfig
	// NewProtocolNode creates a protocol node.
	NewProtocolNode = olsr.NewNode
	// NewNetwork builds a simulated protocol network.
	NewNetwork = sim.NewNetwork
	// NewMobility starts a waypoint mobility population.
	NewMobility = geom.NewMobility
	// NewMobileSim deploys protocol nodes under mobility.
	NewMobileSim = sim.NewMobileSim
	// PairWeight derives stable per-pair link weights under mobility.
	PairWeight = sim.PairWeight
)

// Evaluation harness.
type (
	// Figure describes a paper figure to regenerate.
	Figure = eval.Figure
	// FigureOptions tunes a figure run.
	FigureOptions = eval.FigureOptions
	// FigureResult is a regenerated figure.
	FigureResult = eval.FigureResult
	// Scenario is one density point.
	Scenario = eval.Scenario
	// PointResult is one density point's outcome.
	PointResult = eval.PointResult
	// ProtocolSpec binds a selector to a routing policy.
	ProtocolSpec = eval.ProtocolSpec
	// ControlSweepOptions configures the A4 control-traffic experiment.
	ControlSweepOptions = eval.ControlSweepOptions
	// ControlSweepResult is RunControlSweep's outcome.
	ControlSweepResult = eval.ControlSweepResult
)

var (
	// PaperFigures returns Figs. 6-9 with the paper's parameters.
	PaperFigures = eval.PaperFigures
	// FigureByID resolves "fig6".."fig9".
	FigureByID = eval.FigureByID
	// RunFigure regenerates a figure.
	RunFigure = eval.RunFigure
	// RunPoint evaluates protocols at one density.
	RunPoint = eval.RunPoint
	// PaperProtocols returns the paper's three curves.
	PaperProtocols = eval.PaperProtocols
	// LoopFixAblation compares loop-fix variants (A1).
	LoopFixAblation = eval.LoopFixAblation
	// LocalLinksAblation measures source-local-link routing (A2).
	LocalLinksAblation = eval.LocalLinksAblation
	// RoutingPolicyAblation contrasts QOLSR routing readings (A6).
	RoutingPolicyAblation = eval.RoutingPolicyAblation
	// UpperBoundProtocols adds the full link-state bound.
	UpperBoundProtocols = eval.UpperBoundProtocols
	// MPRHeuristicAblation compares MPR heuristics as advertised sets.
	MPRHeuristicAblation = eval.MPRHeuristicAblation
	// RunControlSweep measures control-plane bytes on the live stack (A4).
	RunControlSweep = eval.RunControlSweep
)

// SelectFNBPLex runs FNBP under a lexicographic two-criterion cost, the
// paper's future-work extension (Sec. V).
func SelectFNBPLex(view *LocalView, lex Lexicographic, loopFix LoopFixMode) ([]int32, error) {
	return core.SelectFNBPSemiring[metric.LexCost](view, lex, loopFix)
}

// DijkstraLex computes lexicographic two-criterion optimal paths from src
// (e.g. widest, then energy-cheapest). See graph.DijkstraGeneric.
func DijkstraLex(g *Graph, lex Lexicographic, src int32, view *LocalView, exclude int32) (*LexSearch, error) {
	return graph.DijkstraGeneric[metric.LexCost](g, lex, src, view, exclude)
}

// LexSearch is the result of DijkstraLex.
type LexSearch = graph.GenericSearch[metric.LexCost]

// UniformWeights draws i.i.d. weights from iv onto a graph channel.
func UniformWeights(g *Graph, channel string, iv Interval, rng *rand.Rand) error {
	return g.AssignUniformWeights(channel, iv, rng)
}
