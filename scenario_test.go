package qolsr_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"qolsr"
)

// rootScenario is a tiny explicit-topology program for fast API tests.
func rootScenario() qolsr.Scenario {
	pts := []qolsr.Point{
		{X: 20, Y: 60}, {X: 100, Y: 60}, {X: 180, Y: 60},
		{X: 20, Y: 140}, {X: 100, Y: 140}, {X: 180, Y: 140},
	}
	return qolsr.Scenario{
		Name:        "root-test",
		Topology:    qolsr.ScenarioTopology{Points: pts, Field: qolsr.Field{Width: 300, Height: 300}, Radius: 100},
		Traffic:     qolsr.ScenarioTraffic{Flows: 4},
		Duration:    20 * time.Second,
		Warmup:      12 * time.Second,
		SampleEvery: 2 * time.Second,
		Phases: []qolsr.ScenarioPhase{
			{At: 15 * time.Second, Action: qolsr.ActionFailLink{A: 0, B: 1}},
		},
	}
}

func TestRunScenarioRoot(t *testing.T) {
	res, err := qolsr.RunScenario(context.Background(), rootScenario(),
		qolsr.WithRuns(2), qolsr.WithSeed(3), qolsr.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(res.Runs))
	}
	for _, run := range res.Runs {
		if run.Nodes != 6 || len(run.Samples) == 0 {
			t.Errorf("run %d: nodes=%d samples=%d", run.Run, run.Nodes, len(run.Samples))
		}
		if len(run.Reconvergence) != 1 {
			t.Errorf("run %d: reconvergence records = %d, want 1", run.Run, len(run.Reconvergence))
		}
	}
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "qolsr-scenario/v1"`) {
		t.Error("JSON missing schema marker")
	}
	buf.Reset()
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "root-test") {
		t.Error("table missing scenario name")
	}
}

func TestStreamScenarioRoot(t *testing.T) {
	events, wait := qolsr.NewRunner(qolsr.WithRuns(1)).StreamScenario(context.Background(), rootScenario())
	var samples, runs int
	for ev := range events {
		switch ev.Kind {
		case qolsr.ScenarioEventSample:
			samples++
		case qolsr.ScenarioEventRun:
			runs++
		}
	}
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if samples == 0 || runs != 1 {
		t.Errorf("streamed %d samples, %d runs", samples, runs)
	}
	if agg := res.Aggregate(); len(agg) != samples {
		t.Errorf("aggregate has %d entries, want %d", len(agg), samples)
	}
}

func TestScenarioRegistryRoot(t *testing.T) {
	names := qolsr.ScenarioNames()
	if len(names) == 0 {
		t.Fatal("no built-in scenarios")
	}
	defs := qolsr.BuiltInScenarios()
	if len(defs) != len(names) {
		t.Errorf("definitions = %d, names = %d", len(defs), len(names))
	}
	sc, err := qolsr.ScenarioByName(names[0], "topofilter")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Protocol.Selector != "topofilter" {
		t.Errorf("selector = %q", sc.Protocol.Selector)
	}
	if _, err := qolsr.ScenarioByName("bogus", ""); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRegistryNameLists(t *testing.T) {
	if got := qolsr.RoutePolicyNames(); len(got) != 2 {
		t.Errorf("RoutePolicyNames = %v", got)
	}
	if got := qolsr.QuantityNames(); len(got) != 4 {
		t.Errorf("QuantityNames = %v", got)
	}
}

// TestScenarioWorkersBitIdentical pins the event core's determinism at the
// API surface: a lossy mobile scenario (keyed medium draws, waypoint churn,
// measured link quality) produces byte-identical results whether its
// replicate runs execute on one worker or eight.
func TestScenarioWorkersBitIdentical(t *testing.T) {
	sc := qolsr.Scenario{
		Name: "workers-bit-identity",
		Topology: qolsr.ScenarioTopology{
			Deployment: &qolsr.Deployment{
				Field:  qolsr.Field{Width: 400, Height: 400},
				Radius: 100,
				Degree: 8,
			},
		},
		Protocol: qolsr.ScenarioProtocol{MeasuredQoS: true},
		Medium:   qolsr.ScenarioMedium{Kind: "lossy", Loss: 0.1, DistanceLoss: 0.2},
		Mobility: &qolsr.ScenarioMobility{
			Model: qolsr.Waypoint{
				Field:    qolsr.Field{Width: 400, Height: 400},
				MinSpeed: 1,
				MaxSpeed: 5,
				Pause:    2 * time.Second,
			},
			RebuildEvery: time.Second,
		},
		Traffic:     qolsr.ScenarioTraffic{Flows: 4},
		Duration:    30 * time.Second,
		Warmup:      10 * time.Second,
		SampleEvery: 5 * time.Second,
	}
	encode := func(workers int) string {
		res, err := qolsr.RunScenario(context.Background(), sc,
			qolsr.WithRuns(4), qolsr.WithSeed(9), qolsr.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := encode(1)
	eight := encode(8)
	if one != eight {
		t.Error("lossy mobile scenario results differ between 1 and 8 workers")
	}
}
