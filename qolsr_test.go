package qolsr_test

// Tests of the public facade: everything a downstream user can reach from
// the root package, exercised together on realistic inputs.

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"qolsr"
)

func TestPublicEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dep := qolsr.Deployment{
		Field:  qolsr.Field{Width: 400, Height: 400},
		Radius: 100,
		Degree: 9,
	}
	m := qolsr.Bandwidth()
	g, err := qolsr.BuildNetwork(dep, m.Name(), qolsr.DefaultInterval(), rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Weights(m.Name())
	if err != nil {
		t.Fatal(err)
	}

	sets := make([][]int32, g.N())
	for u := int32(0); int(u) < g.N(); u++ {
		view := qolsr.NewLocalView(g, u)
		sets[u], err = (qolsr.FNBP{}).Select(view, m, w)
		if err != nil {
			t.Fatal(err)
		}
	}
	adv, err := qolsr.BuildAdvertised(g, sets, m.Name())
	if err != nil {
		t.Fatal(err)
	}
	if adv.M() == 0 || adv.M() > g.M() {
		t.Fatalf("advertised links = %d of %d", adv.M(), g.M())
	}
	src, dst, err := qolsr.PickConnectedPair(g, rng, 64)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := qolsr.EvaluatePair(g, adv, m, m.Name(), src, dst, qolsr.QoSOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Delivered {
		t.Fatal("FNBP advertised graph failed delivery")
	}
	if ev.Overhead < 0 {
		t.Errorf("negative overhead %v", ev.Overhead)
	}
}

func TestPublicSelectorsByName(t *testing.T) {
	for _, name := range []string{"fnbp", "topofilter", "qolsr", "full"} {
		sel, err := qolsr.SelectorByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sel.Name() == "" {
			t.Errorf("%s: empty selector name", name)
		}
	}
	for _, name := range []string{"bandwidth", "delay", "hop", "energy"} {
		if _, err := qolsr.MetricByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublicMPRSelection(t *testing.T) {
	g := qolsr.NewGraph(5)
	for _, ab := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 4}} {
		if _, err := g.AddEdge(ab[0], ab[1]); err != nil {
			t.Fatal(err)
		}
	}
	view := qolsr.NewLocalView(g, 0)
	set, err := qolsr.SelectMPR(view, qolsr.MPRGreedy, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !qolsr.VerifyMPRCoverage(view, set) {
		t.Error("MPR coverage violated")
	}
	if len(set) != 2 {
		t.Errorf("MPR set = %v, want both relays", set)
	}
}

func TestPublicProtocolStack(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	dep := qolsr.Deployment{Field: qolsr.Field{Width: 300, Height: 300}, Radius: 100, Degree: 7}
	m := qolsr.Delay()
	g, err := qolsr.BuildNetwork(dep, m.Name(), qolsr.DefaultInterval(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := qolsr.DefaultProtocolConfig(m)
	nw, err := qolsr.NewNetwork(g, cfg, qolsr.NetworkOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(20 * time.Second)
	if nw.Stats.HelloMessages == 0 {
		t.Error("no protocol traffic")
	}
	routes, err := nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Error(err)
	}
	again, err := nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Error(err)
	}
	if routes != again {
		t.Error("routing table not served from cache on an unchanged network")
	}
}

func TestPublicFigureDefinitions(t *testing.T) {
	figs := qolsr.PaperFigures()
	if len(figs) != 4 {
		t.Fatalf("figures = %d", len(figs))
	}
	exp := qolsr.NewExperiment(qolsr.Figure{
		ID: "smoke", Title: "smoke", Metric: qolsr.Bandwidth(),
		Degrees: []float64{8}, Quantity: "set-size",
		Protocols: qolsr.PaperProtocols(),
	})
	res, err := exp.Run(context.Background(), qolsr.WithRuns(1), qolsr.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteTables(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "smoke") {
		t.Error("table missing title")
	}
}

func TestPublicLexSelection(t *testing.T) {
	g := qolsr.NewGraph(3)
	for _, s := range []struct {
		a, b   int32
		bw, en float64
	}{{0, 1, 5, 1}, {1, 2, 5, 1}, {0, 2, 1, 1}} {
		e, err := g.AddEdge(s.a, s.b)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetWeight("bandwidth", e, s.bw); err != nil {
			t.Fatal(err)
		}
		if err := g.SetWeight("energy", e, s.en); err != nil {
			t.Fatal(err)
		}
	}
	lex := qolsr.Lexicographic{
		PrimaryMetric:   qolsr.Bandwidth(),
		SecondaryMetric: qolsr.Energy(),
		PrimaryWeight:   "bandwidth",
		SecondaryWeight: "energy",
	}
	ans, err := qolsr.SelectFNBPLex(qolsr.NewLocalView(g, 0), lex, qolsr.LoopFixLiteral)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0] != 1 {
		t.Errorf("lex ANS = %v, want [1] (the wide detour to 2)", ans)
	}
	gs, err := qolsr.DijkstraLex(g, lex, 0, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Cost[2].Primary != 5 {
		t.Errorf("lex route bandwidth = %v, want 5", gs.Cost[2].Primary)
	}
}

func TestPublicUniformWeights(t *testing.T) {
	g := qolsr.NewGraph(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := qolsr.UniformWeights(g, "x", qolsr.Interval{Lo: 2, Hi: 3}, rng); err != nil {
		t.Fatal(err)
	}
	w, err := g.Weights("x")
	if err != nil {
		t.Fatal(err)
	}
	if w[0] < 2 || w[0] > 3 {
		t.Errorf("weight %v outside [2,3]", w[0])
	}
}
