package qolsr_test

// Tests of the Experiment/Runner API: composition by name, streaming,
// context cancellation, and bit-identical results across worker budgets.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"qolsr"
)

// tinyExperiment sweeps two low densities of a reduced Fig. 6 — small
// enough for unit tests, real enough to exercise the parallel pipeline.
func tinyExperiment(t *testing.T) *qolsr.Experiment {
	t.Helper()
	fig, err := qolsr.FigureByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	return qolsr.NewExperiment(fig)
}

func TestExperimentByID(t *testing.T) {
	exp, err := qolsr.ExperimentByID("fig6", "ablation-mprs", "policy")
	if err != nil {
		t.Fatal(err)
	}
	figs := exp.Figures()
	if len(figs) != 3 || figs[0].ID != "fig6" || figs[1].ID != "ablation-mprs" || figs[2].ID != "ablation-policy" {
		t.Errorf("composed figures = %+v", figs)
	}
	if _, err := qolsr.ExperimentByID("fig6", "nope"); err == nil {
		t.Error("unknown sweep ID accepted")
	}
}

func TestExperimentRunAndEncoders(t *testing.T) {
	res, err := tinyExperiment(t).Run(context.Background(),
		qolsr.WithRuns(2), qolsr.WithSeed(9), qolsr.WithDegrees(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) != 1 || len(res.Figures[0].Points) != 2 {
		t.Fatalf("result shape wrong: %+v", res.Figures)
	}

	var jsonBuf bytes.Buffer
	if err := res.EncodeJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": "qolsr-sweep/v1"`, `"id": "fig6"`, `"set-size"`, `"fnbp"`} {
		if !strings.Contains(jsonBuf.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, jsonBuf.String())
		}
	}
	var csvBuf bytes.Buffer
	if err := res.EncodeCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	// Header + 2 densities × 3 protocols × 1 quantity.
	if len(lines) != 7 {
		t.Errorf("CSV lines = %d, want 7:\n%s", len(lines), csvBuf.String())
	}
}

func TestExperimentStreamDeliversIncrementally(t *testing.T) {
	events, wait := tinyExperiment(t).Stream(context.Background(),
		qolsr.WithRuns(1), qolsr.WithSeed(4), qolsr.WithDegrees(3, 4, 5), qolsr.WithWorkers(3))
	points, figures := 0, 0
	for ev := range events {
		switch ev.Kind {
		case qolsr.EventPoint:
			points++
			if ev.Point == nil {
				t.Error("point event without point")
			}
		case qolsr.EventFigure:
			figures++
		}
	}
	if points != 3 || figures != 1 {
		t.Errorf("stream = %d points, %d figures; want 3, 1", points, figures)
	}
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Figures[0].Points {
		if p == nil {
			t.Errorf("point %d missing from final result", i)
		}
	}
}

// Cancelling mid-sweep must return promptly with ctx.Err().
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	exp := tinyExperiment(t)
	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		// Enough work (8 points × 200 runs) to be mid-flight when the
		// cancel lands.
		_, err := exp.Run(ctx, qolsr.WithRuns(200), qolsr.WithWorkers(2),
			qolsr.WithDegrees(5, 6, 7, 8, 9, 10, 11, 12))
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return promptly after cancel")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// Same seed, different worker budgets: the encoded JSON must be
// byte-identical — parallelism only changes wall-clock time.
func TestExperimentDeterministicAcrossWorkers(t *testing.T) {
	encode := func(workers int) []byte {
		res, err := tinyExperiment(t).Run(context.Background(),
			qolsr.WithRuns(3), qolsr.WithSeed(6), qolsr.WithDegrees(3, 4), qolsr.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	for _, workers := range []int{2, 8} {
		if got := encode(workers); !bytes.Equal(serial, got) {
			t.Errorf("workers=%d changed the result", workers)
		}
	}
}

func TestRunnerControlSweep(t *testing.T) {
	r := qolsr.NewRunner(qolsr.WithSeed(3))
	res, err := r.ControlSweep(context.Background(), qolsr.ControlSweepOptions{
		Degrees: []float64{6},
		Runs:    1,
		SimTime: 10 * time.Second,
		Field:   qolsr.Field{Width: 300, Height: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || len(res.Points[0]) != 3 {
		t.Fatalf("control sweep shape wrong")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ControlSweep(ctx, qolsr.ControlSweepOptions{Degrees: []float64{6}, Runs: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled control sweep err = %v", err)
	}
}

func TestPublicRegistries(t *testing.T) {
	for _, name := range []string{"qos-optimal", "minhop-then-qos"} {
		p, err := qolsr.PolicyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.String() != name {
			t.Errorf("%s round-trip = %s", name, p)
		}
	}
	if _, err := qolsr.PolicyByName("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := qolsr.QuantityByName("overhead"); err != nil {
		t.Error(err)
	}
	if len(qolsr.SweepIDs()) != 10 {
		t.Errorf("sweep IDs = %v", qolsr.SweepIDs())
	}
	if len(qolsr.Ablations()) != 6 {
		t.Errorf("ablations = %d", len(qolsr.Ablations()))
	}
}
