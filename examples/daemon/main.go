// Daemon example: a five-node QOLSR mesh on loopback UDP. Each node runs a
// real daemon — a bound socket, wall-clock HELLO/TC timers, RTT-measured
// link delay — peered as a ring with one chord so routes are genuinely
// multi-hop. The example waits for the mesh to converge, sends a data packet
// across it, then queries one daemon's HTTP status endpoint the way an
// operator would.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"qolsr/internal/node"
)

func main() {
	const n = 5
	id := func(i int) int64 { return int64(i + 1) }

	// 1. Bind every socket first so each peer table can name real ports.
	transports := make([]*node.UDPTransport, n)
	addrs := make([]string, n)
	for i := range transports {
		tr, err := node.ListenUDP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		transports[i] = tr
		addrs[i] = tr.LocalAddr()
	}

	// 2. Start the daemons: a ring (each node peers with its two ring
	//    neighbors), measured mode, fast timers so the example is snappy.
	received := make(chan string, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()

	daemons := make([]*node.Daemon, n)
	for i := range daemons {
		var peers []node.Peer
		for _, d := range []int{-1, 1} {
			j := ((i+d)%n + n) % n
			peers = append(peers, node.Peer{ID: id(j), Addr: addrs[j]})
		}
		cfg := node.Config{
			ID:            id(i),
			Transport:     transports[i],
			Peers:         peers,
			HelloInterval: 100 * time.Millisecond,
			TCInterval:    250 * time.Millisecond,
			Measured:      true,
		}
		if i == 2 {
			cfg.OnData = func(src int64, seq uint64, body []byte) {
				select {
				case received <- fmt.Sprintf("node 3 got %q from node %d", body, src):
				default:
				}
			}
		}
		d, err := node.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		daemons[i] = d
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Run(ctx)
		}()
	}
	fmt.Printf("started %d daemons on loopback UDP\n", n)

	// 3. Wait for node 1 to hold a route to every other node.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := daemons[0].Status()
		if err != nil {
			log.Fatal(err)
		}
		if len(st.Routes) == n-1 {
			fmt.Printf("node 1 converged: %d routes, MPRs %v\n", len(st.Routes), st.MPRs)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("mesh did not converge")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 4. Send a packet from node 1 to node 3: on a ring of five it rides
	//    through an intermediate daemon's routing table.
	if err := daemons[0].Send(id(2), []byte("hello over the mesh")); err != nil {
		log.Fatal(err)
	}
	select {
	case msg := <-received:
		fmt.Println(msg)
	case <-time.After(5 * time.Second):
		log.Fatal("packet did not arrive")
	}

	// 5. Query node 1's status endpoint over HTTP, as an operator would.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: daemons[0].StatusHandler()}
	go srv.Serve(ln)
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/status", ln.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /status -> %s\n%s\n", resp.Status, body)
}
