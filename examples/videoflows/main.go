// Videoflows walks the QoS traffic engine: first an admission-control
// close-up on a tiny explicit topology (a flow rejected when its only path
// breaks the delay ceiling, admitted again once the direct link heals),
// then a scaled-down run of the built-in video-vs-cbr scenario showing
// per-class delivery, delay percentiles, jitter and the QoS verdicts —
// admitted-but-violated vs correctly-rejected. It is the runnable companion
// of the README "Traffic & QoS flows" section; `qolsr-sim scenario run
// -name video-vs-cbr` and `qolsr-sim -ablation load` expose the same
// machinery on the command line.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qolsr"
)

func main() {
	walkAdmission()
	runVideoVsCBR(context.Background())
}

// walkAdmission builds a diamond topology — a wide direct link 0-3 beside a
// narrow 3-hop chain — and shows the admission gate's decisions as the
// direct link fails and heals.
func walkAdmission() {
	g := qolsr.NewGraph(4)
	for _, l := range []struct {
		a, b int32
		w    float64
	}{{0, 3, 10}, {0, 1, 5}, {1, 2, 5}, {2, 3, 5}} {
		e, err := g.AddEdge(l.a, l.b)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.SetWeight("bandwidth", e, l.w); err != nil {
			log.Fatal(err)
		}
	}
	nw, err := qolsr.NewNetwork(g, qolsr.DefaultProtocolConfig(qolsr.Bandwidth()), qolsr.NetworkOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	nw.Start()
	nw.Run(30 * time.Second)

	gate := &qolsr.AdmissionGate{NW: nw}
	req := qolsr.FlowRequirements{MinBandwidth: 4, MaxDelay: 2 * time.Millisecond}
	show := func(when string) {
		dec := gate.Decide(0, 3, req)
		verdict := "rejected (" + dec.Reason + ")"
		if dec.Admitted {
			verdict = "admitted"
		}
		fmt.Printf("%-28s %s — %d hops, path bandwidth %g, path delay %v (oracle feasible: %v)\n",
			when+":", verdict, dec.Hops, dec.PathBandwidth, dec.PathDelay, dec.Feasible)
	}

	fmt.Println("# admission on a diamond: direct 0-3 (bandwidth 10) vs 3-hop chain (bandwidth 5)")
	fmt.Println("# flow 0->3 wants bandwidth >= 4 and delay <= 2ms (ideal radio: 1ms/hop)")
	show("converged")
	if err := nw.FailLink(0, 3); err != nil {
		log.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 30*time.Second)
	show("after FailLink(0,3)")
	if err := nw.RestoreLink(0, 3); err != nil {
		log.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 30*time.Second)
	show("after RestoreLink(0,3)")
	fmt.Println()
}

// runVideoVsCBR runs the built-in video-vs-cbr scenario, scaled down for
// example speed, and prints the per-class traffic verdicts.
func runVideoVsCBR(ctx context.Context) {
	sc, err := qolsr.ScenarioByName("video-vs-cbr", "fnbp")
	if err != nil {
		log.Fatal(err)
	}
	sc.Topology.Deployment.Degree = 8
	sc.Topology.Deployment.Field = qolsr.Field{Width: 400, Height: 400}
	sc.Duration = 60 * time.Second
	sc.Warmup = 20 * time.Second

	fmt.Println("# built-in video-vs-cbr (scaled down): bursty video with delay+jitter bounds vs CBR")
	res, err := qolsr.RunScenario(ctx, sc, qolsr.WithRuns(1), qolsr.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Runs[0].Traffic
	if rep == nil {
		log.Fatal("no traffic report")
	}
	fmt.Println("class    flows  admitted  satisfied  violated  c-reject  f-reject  delivery  p95        jitter")
	rows := append(append([]qolsr.FlowClassReport{}, rep.Classes...), rep.Total)
	for _, c := range rows {
		fmt.Printf("%-8s %-6d %-9d %-10d %-9d %-9d %-9d %-9.3f %-10v %v\n",
			c.Class, c.Flows, c.Admitted, c.Satisfied, c.Violated, c.CorrectReject, c.FalseReject,
			c.Delivery, c.DelayP95.Round(100*time.Microsecond), c.Jitter.Round(100*time.Microsecond))
	}
	fmt.Printf("mix violation ratio: %.3f (admitted flows whose measured QoS broke a bound)\n",
		rep.Total.ViolationRatio())
	for _, f := range rep.Flows {
		if f.Verdict == qolsr.FlowViolated || f.Verdict == qolsr.FlowCorrectReject {
			fmt.Printf("  flow %d (%s %d->%d): %s", f.ID, f.Class, f.Src, f.Dst, f.Verdict)
			if f.Reason != "" {
				fmt.Printf(" (%s)", f.Reason)
			}
			fmt.Println()
		}
	}
}
