// Energyrouting implements the paper's future-work section (Sec. V):
// "multi-criterion metrics, for example minimizing energy-consumption while
// providing good bandwidth."
//
// Links carry both a bandwidth and an energy weight (transmission energy
// grows with distance). FNBP runs under a lexicographic semiring — maximize
// bandwidth first, break ties by minimal energy — and the example compares
// the energy bill of the advertised routes against plain bandwidth-only
// FNBP over many field realisations.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"qolsr"
)

const (
	runs   = 15
	degree = 12
	radius = 100.0
)

func main() {
	lex := qolsr.Lexicographic{
		PrimaryMetric:   qolsr.Bandwidth(),
		SecondaryMetric: qolsr.Energy(),
		PrimaryWeight:   "bandwidth",
		SecondaryWeight: "energy",
	}

	var bwOnlySize, lexSize float64
	var plainBW, lexBW, plainEnergy, lexEnergy float64
	var nodes, pairs int
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(int64(run) + 5))
		g := buildField(rng)
		w, err := g.Weights("bandwidth")
		if err != nil {
			log.Fatal(err)
		}

		plainSets := make([][]int32, g.N())
		lexSets := make([][]int32, g.N())
		for u := int32(0); int(u) < g.N(); u++ {
			view := qolsr.NewLocalView(g, u)
			plainSets[u], err = (qolsr.FNBP{}).Select(view, qolsr.Bandwidth(), w)
			if err != nil {
				log.Fatal(err)
			}
			lexSets[u], err = qolsr.SelectFNBPLex(view, lex, qolsr.LoopFixLiteral)
			if err != nil {
				log.Fatal(err)
			}
			bwOnlySize += float64(len(plainSets[u]))
			lexSize += float64(len(lexSets[u]))
			nodes++
		}

		// Route random pairs over each advertised topology, always
		// picking the widest-then-cheapest path available in it.
		advPlain := advertise(g, plainSets)
		advLex := advertise(g, lexSets)
		for p := 0; p < 20; p++ {
			src, dst, err := qolsr.PickConnectedPair(g, rng, 64)
			if err != nil {
				break
			}
			cp, okP := lexRoute(advPlain, lex, src, dst)
			cl, okL := lexRoute(advLex, lex, src, dst)
			if !okP || !okL {
				continue
			}
			pairs++
			plainBW += cp.Primary
			lexBW += cl.Primary
			plainEnergy += cp.Secondary
			lexEnergy += cl.Secondary
		}
	}

	fmt.Printf("fields: %d, nodes: %d, routed pairs: %d (target degree %d)\n", runs, nodes, pairs, degree)
	fmt.Printf("bandwidth-only FNBP:   %.2f advertised links/node\n", bwOnlySize/float64(nodes))
	fmt.Printf("bandwidth+energy FNBP: %.2f advertised links/node\n", lexSize/float64(nodes))
	n := float64(pairs)
	fmt.Printf("routes over bandwidth-only topology:   bandwidth %.2f, energy %.2f\n", plainBW/n, plainEnergy/n)
	fmt.Printf("routes over bandwidth+energy topology: bandwidth %.2f, energy %.2f\n", lexBW/n, lexEnergy/n)
	fmt.Printf("route energy saved at matched bandwidth: %.1f%%\n", 100*(1-lexEnergy/plainEnergy))
}

// advertise materialises a selection's advertised topology, copying both
// weight channels.
func advertise(g *qolsr.Graph, sets [][]int32) *qolsr.Graph {
	adv, err := qolsr.BuildAdvertised(g, sets, "bandwidth")
	if err != nil {
		log.Fatal(err)
	}
	en, err := g.Weights("energy")
	if err != nil {
		log.Fatal(err)
	}
	for e := 0; e < adv.M(); e++ {
		a, b := adv.EdgeEndpoints(e)
		pe, ok := g.EdgeBetween(a, b)
		if !ok {
			log.Fatal("advertised link without physical edge")
		}
		if err := adv.SetWeight("energy", e, en[pe]); err != nil {
			log.Fatal(err)
		}
	}
	return adv
}

// lexRoute returns the widest-then-cheapest path cost from src to dst in g.
func lexRoute(g *qolsr.Graph, lex qolsr.Lexicographic, src, dst int32) (qolsr.LexCost, bool) {
	gs, err := qolsr.DijkstraLex(g, lex, src, nil, -1)
	if err != nil {
		log.Fatal(err)
	}
	if !gs.Reached[dst] {
		return qolsr.LexCost{}, false
	}
	return gs.Cost[dst], true
}

// buildField deploys a field where each link carries a bandwidth weight
// (uniform, as in the paper) and a transmission-energy weight following the
// classic distance-power law e = (d/R)^2 + 0.1. Link lengths are drawn from
// the unit-disk length distribution (r ~ R·sqrt(U)).
func buildField(rng *rand.Rand) *qolsr.Graph {
	dep := qolsr.Deployment{
		Field:  qolsr.Field{Width: 500, Height: 500},
		Radius: radius,
		Degree: degree,
	}
	g, err := qolsr.BuildNetwork(dep, "bandwidth", qolsr.DefaultInterval(), rng)
	if err != nil {
		log.Fatal(err)
	}
	for e := 0; e < g.M(); e++ {
		d := radius * math.Sqrt(rng.Float64())
		if err := g.SetWeight("energy", e, (d/radius)*(d/radius)+0.1); err != nil {
			log.Fatal(err)
		}
	}
	return g
}
