// Mobilemanet runs the protocol stack in the regime OLSR was designed for:
// a mobile ad hoc network. Nodes wander under the random-waypoint model,
// links form and break, and the soft-state protocol keeps re-learning its
// neighborhoods and re-running FNBP selection. The program reports how well
// the distributed state tracks the moving ground truth at several speeds.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"qolsr"
)

const (
	nodes    = 30
	fieldLen = 350.0
	radius   = 100.0
	simFor   = 120 * time.Second
)

func main() {
	fmt.Printf("%d nodes on a %gx%g field, R=%g, %v per speed setting\n\n",
		nodes, fieldLen, fieldLen, radius, simFor)
	fmt.Println("speed(u/s)  link-freshness  routed-frac  rebuilds")
	for _, speed := range []float64{2, 8, 20} {
		fresh, routed, rebuilds := runAt(speed)
		fmt.Printf("%-10g  %-14.2f  %-11.2f  %d\n", speed, fresh, routed, rebuilds)
	}
	fmt.Println("\nlink-freshness: fraction of protocol-known links that are physically")
	fmt.Println("current; routed-frac: reachable destinations with a route at node 0.")
}

func runAt(maxSpeed float64) (freshness, routedFrac float64, rebuilds int) {
	rng := rand.New(rand.NewSource(11))
	model := qolsr.Waypoint{
		Field:    qolsr.Field{Width: fieldLen, Height: fieldLen},
		MinSpeed: maxSpeed / 2,
		MaxSpeed: maxSpeed,
		Pause:    2 * time.Second,
	}
	initial := make([]qolsr.Point, nodes)
	for i := range initial {
		initial[i] = qolsr.Point{X: rng.Float64() * fieldLen, Y: rng.Float64() * fieldLen}
	}
	cfg := qolsr.DefaultProtocolConfig(qolsr.Bandwidth())
	ms, err := qolsr.NewMobileSim(model, initial, radius, cfg, qolsr.NetworkOptions{Seed: 5}, time.Second, 77)
	if err != nil {
		log.Fatal(err)
	}
	ms.Start()
	ms.Run(simFor)

	now := ms.NW.Engine.Now()
	var current, known int
	for i, node := range ms.NW.Nodes {
		h := node.GenerateHello(now)
		truth := map[int64]bool{}
		for _, arc := range ms.NW.Phys.Arcs(int32(i)) {
			truth[int64(ms.NW.Phys.ID(arc.To))] = true
		}
		for _, l := range h.Links {
			known++
			if truth[l.Neighbor] {
				current++
			}
		}
	}
	if known > 0 {
		freshness = float64(current) / float64(known)
	}

	table, err := ms.NW.Nodes[0].Routes(now)
	if err != nil {
		log.Fatal(err)
	}
	reach := 0
	routed := 0
	seen := reachableFrom(ms, 0)
	for x := 1; x < nodes; x++ {
		if !seen[x] {
			continue
		}
		reach++
		if _, ok := table.Lookup(int64(x)); ok {
			routed++
		}
	}
	if reach > 0 {
		routedFrac = float64(routed) / float64(reach)
	}
	return freshness, routedFrac, ms.Rebuilds
}

func reachableFrom(ms *qolsr.MobileSim, src int32) []bool {
	seen := make([]bool, ms.NW.Phys.N())
	seen[src] = true
	queue := []int32{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, arc := range ms.NW.Phys.Arcs(x) {
			if !seen[arc.To] {
				seen[arc.To] = true
				queue = append(queue, arc.To)
			}
		}
	}
	return seen
}
