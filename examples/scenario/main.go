// Scenario drives the declarative scenario engine: a custom link-flap
// program on an explicit grid topology, streamed sample by sample, followed
// by a scaled-down run of the built-in partition-heal scenario comparing
// two advertised-set selectors. It is the runnable companion of the README
// "Scenarios" section; `qolsr-sim scenario run` exposes the same engine on
// the command line.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qolsr"
)

func main() {
	ctx := context.Background()
	streamLinkFlap(ctx)
	comparePartitionHeal(ctx)
}

// streamLinkFlap runs a custom program — a 3×4 grid whose busiest link
// flaps mid-run — and prints every measurement as it is taken.
func streamLinkFlap(ctx context.Context) {
	var pts []qolsr.Point
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			pts = append(pts, qolsr.Point{X: 30 + 80*float64(c), Y: 30 + 80*float64(r)})
		}
	}
	sc := qolsr.Scenario{
		Name:        "grid-link-flap",
		Topology:    qolsr.ScenarioTopology{Points: pts, Field: qolsr.Field{Width: 400, Height: 300}, Radius: 100},
		Protocol:    qolsr.ScenarioProtocol{Selector: "fnbp"},
		Traffic:     qolsr.ScenarioTraffic{Flows: 8},
		Duration:    50 * time.Second,
		Warmup:      16 * time.Second,
		SampleEvery: 2 * time.Second,
		Phases: []qolsr.ScenarioPhase{
			{At: 25 * time.Second, Action: qolsr.ActionFailRandom{Count: 2}},
			{At: 40 * time.Second, Action: qolsr.ActionRestoreAll{}},
		},
	}

	fmt.Println("# custom grid-link-flap, streamed")
	fmt.Println("t_s   delivery  links  ctrlB/s")
	events, wait := qolsr.NewRunner(qolsr.WithRuns(1), qolsr.WithSeed(7)).StreamScenario(ctx, sc)
	for ev := range events {
		if ev.Kind == qolsr.ScenarioEventSample {
			s := ev.Sample
			fmt.Printf("%-5g %-9.2f %-6d %.0f\n", s.Time.Seconds(), s.Delivery, s.Links, s.ControlBPS)
		}
	}
	res, err := wait()
	if err != nil {
		log.Fatal(err)
	}
	for _, rc := range res.Runs[0].Reconvergence {
		if rc.Recovered {
			fmt.Printf("%s @%gs: recovered in %gs\n", rc.Phase, rc.EventTime.Seconds(), rc.Duration().Seconds())
		} else {
			fmt.Printf("%s @%gs: never recovered\n", rc.Phase, rc.EventTime.Seconds())
		}
	}
	fmt.Println()
}

// comparePartitionHeal runs the built-in partition-heal scenario, scaled
// down for example speed, under two selectors and prints the delivery dip
// and heal.
func comparePartitionHeal(ctx context.Context) {
	fmt.Println("# built-in partition-heal (scaled down), fnbp vs qolsr")
	fmt.Println("selector    min-delivery  final-delivery  heal-time")
	for _, sel := range []string{"fnbp", "qolsr"} {
		sc, err := qolsr.ScenarioByName("partition-heal", sel)
		if err != nil {
			log.Fatal(err)
		}
		// Scale down: a smaller, sparser field and a shorter timeline
		// keep the example quick; the full-size program is one CLI call
		// away. The partition/heal phases at 40s/80s still fit.
		sc.Topology.Deployment.Degree = 8
		sc.Topology.Deployment.Field = qolsr.Field{Width: 400, Height: 400}
		sc.Duration = 100 * time.Second

		res, err := qolsr.RunScenario(ctx, sc, qolsr.WithRuns(2), qolsr.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		agg := res.Aggregate()
		minDelivery, finalDelivery := 1.0, agg[len(agg)-1].Delivery.Mean()
		for _, a := range agg {
			if m := a.Delivery.Mean(); m < minDelivery {
				minDelivery = m
			}
		}
		heal := "n/a"
		for _, run := range res.Runs {
			for _, rc := range run.Reconvergence {
				if rc.Phase == "restore-all" && rc.Recovered {
					heal = fmt.Sprintf("%gs", rc.Duration().Seconds())
				}
			}
		}
		fmt.Printf("%-11s %-13.2f %-15.2f %s\n", sel, minDelivery, finalDelivery, heal)
	}
}
