// Lossy walks the radio-medium layer: a protocol network driven directly
// over the lossy medium with measured link quality (watching the ETX
// estimate converge to the configured loss rate), then a scaled-down run of
// the built-in lossy-degrade scenario showing delivery track the radio as
// it degrades and recovers. It is the runnable companion of the README
// "Radio medium" section; `qolsr-sim scenario run -medium lossy` and
// `qolsr-sim -ablation loss` expose the same machinery on the command line.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qolsr"
)

func main() {
	watchETXConverge()
	runLossyDegrade(context.Background())
}

// watchETXConverge builds a two-node network on a 25%-loss radio with
// measured QoS and prints the link-quality estimate as the HELLO stream
// probes the link. The expected steady state: delivery ratio ~0.75 per
// direction, ETX ~ 1/0.75² ~ 1.78 under the additive delay metric.
func watchETXConverge() {
	const loss = 0.25
	g := qolsr.NewGraph(2)
	e, err := g.AddEdge(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.SetWeight("delay", e, 1); err != nil {
		log.Fatal(err)
	}
	cfg := qolsr.DefaultProtocolConfig(qolsr.Delay())
	cfg.HelloInterval = time.Second
	cfg.NeighborHoldTime = 8 * time.Second
	cfg.MeasuredQoS = true
	cfg.LQWindow = 32
	nw, err := qolsr.NewNetwork(g, cfg, qolsr.NetworkOptions{
		Seed:   1,
		Medium: qolsr.MediumLossy(qolsr.MediumLossyConfig{Loss: loss, Seed: 7}),
	})
	if err != nil {
		log.Fatal(err)
	}
	nw.Start()

	fmt.Printf("# two nodes, %.0f%% loss, measured link quality (want ratio ~%.2f, ETX ~%.2f)\n",
		loss*100, 1-loss, 1/((1-loss)*(1-loss)))
	fmt.Println("t_s   ratio0->1  etx0->1")
	for t := 20 * time.Second; t <= 120*time.Second; t += 20 * time.Second {
		nw.Run(t)
		ratio, _ := nw.Nodes[0].LinkQuality(int64(g.ID(1)), nw.Engine.Now())
		etx, _ := nw.Nodes[0].LinkWeight(int64(g.ID(1)), nw.Engine.Now())
		fmt.Printf("%-5g %-10.2f %.2f\n", t.Seconds(), ratio, etx)
	}
	fmt.Println()
}

// runLossyDegrade runs the built-in lossy-degrade scenario, scaled down for
// example speed: the radio starts at 5% loss, degrades to 35% mid-run and
// recovers, while measured-QoS selection tracks the change.
func runLossyDegrade(ctx context.Context) {
	sc, err := qolsr.ScenarioByName("lossy-degrade", "fnbp")
	if err != nil {
		log.Fatal(err)
	}
	// Scale down: smaller, sparser field and a shorter timeline; the
	// degrade/recover phases move with it.
	sc.Topology.Deployment.Degree = 8
	sc.Topology.Deployment.Field = qolsr.Field{Width: 400, Height: 400}
	sc.Duration = 80 * time.Second
	sc.Warmup = 20 * time.Second
	sc.Phases = []qolsr.ScenarioPhase{
		{At: 35 * time.Second, Action: qolsr.ActionSetLoss{Loss: 0.35}},
		{At: 60 * time.Second, Action: qolsr.ActionSetLoss{Loss: 0.05}},
	}

	fmt.Println("# built-in lossy-degrade (scaled down): 5% -> 35% @35s -> 5% @60s")
	fmt.Println("t_s   delivery")
	events, wait := qolsr.NewRunner(qolsr.WithRuns(1), qolsr.WithSeed(5)).StreamScenario(ctx, sc)
	for ev := range events {
		if ev.Kind == qolsr.ScenarioEventSample {
			s := ev.Sample
			fmt.Printf("%-5g %.2f\n", s.Time.Seconds(), s.Delivery)
		}
	}
	res, err := wait()
	if err != nil {
		log.Fatal(err)
	}
	run := res.Runs[0]
	fmt.Printf("totals: %d data packets sent, %d delivered, %d lost in flight, %d unroutable\n",
		run.Data.Sent, run.Data.Delivered, run.Data.Lost, run.Data.NoRoute)
	for _, rc := range run.Reconvergence {
		state := "never recovered"
		if rc.Recovered {
			state = fmt.Sprintf("recovered in %gs", rc.Duration().Seconds())
		}
		fmt.Printf("%s @%gs: %s\n", rc.Phase, rc.EventTime.Seconds(), state)
	}
}
