// Quickstart: build a random sensor field, run the paper's FNBP selection
// at one node, route a packet over the advertised topology, then sweep a
// miniature density experiment through the streaming Experiment API.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"qolsr"
)

func main() {
	// 1. Deploy a sensor field the way the paper does: Poisson point
	//    process, unit-disk links, uniform QoS weights.
	rng := rand.New(rand.NewSource(7))
	dep := qolsr.Deployment{
		Field:  qolsr.Field{Width: 500, Height: 500},
		Radius: 100,
		Degree: 10, // target mean neighbors per node
	}
	m := qolsr.Bandwidth()
	g, err := qolsr.BuildNetwork(dep, m.Name(), qolsr.DefaultInterval(), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d nodes with %d links\n", g.N(), g.M())

	// 2. Run FNBP at node 0: which neighbors should it advertise so that
	//    bandwidth-optimal paths survive?
	w, err := g.Weights(m.Name())
	if err != nil {
		log.Fatal(err)
	}
	view := qolsr.NewLocalView(g, 0)
	sel, err := qolsr.FNBP{}.SelectFull(view, m, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 0 has %d one-hop and %d two-hop neighbors\n", len(view.N1), len(view.N2))
	fmt.Printf("FNBP advertises only %d of them: %v\n", len(sel.ANS), sel.ANS)

	// 3. Run the selection at every node and build the network-wide
	//    advertised topology.
	sets := make([][]int32, g.N())
	var total int
	for u := int32(0); int(u) < g.N(); u++ {
		ans, err := (qolsr.FNBP{}).Select(qolsr.NewLocalView(g, u), m, w)
		if err != nil {
			log.Fatal(err)
		}
		sets[u] = ans
		total += len(ans)
	}
	fmt.Printf("network-wide: %.2f advertised neighbors per node\n", float64(total)/float64(g.N()))

	adv, err := qolsr.BuildAdvertised(g, sets, m.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advertised topology: %d of %d physical links\n", adv.M(), g.M())

	// 4. Route a random connected pair and compare with the centralized
	//    optimum (the paper's overhead metric).
	src, dst, err := qolsr.PickConnectedPair(g, rng, 64)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := qolsr.EvaluatePair(g, adv, m, m.Name(), src, dst, qolsr.QoSOptimal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route %d -> %d: bandwidth %.1f over %d hops (optimum %.1f, overhead %.1f%%)\n",
		src, dst, ev.Achieved, ev.Hops, ev.Optimal, 100*ev.Overhead)

	// 5. The same comparison across densities, through the Experiment
	//    API: a reduced Fig. 6 whose points stream in as they complete.
	fig, err := qolsr.FigureByID("fig6")
	if err != nil {
		log.Fatal(err)
	}
	events, wait := qolsr.NewExperiment(fig).Stream(context.Background(),
		qolsr.WithRuns(3), qolsr.WithSeed(7), qolsr.WithDegrees(8, 12))
	for ev := range events {
		if ev.Kind == qolsr.EventPoint {
			pp := ev.Point.Protocols["fnbp"]
			fmt.Printf("density %g: fnbp advertises %.2f neighbors/node\n",
				ev.Degree, pp.SetSize.Mean())
		}
	}
	if _, err := wait(); err != nil {
		log.Fatal(err)
	}
}
