// Sensormonitor runs the motivating scenario of the paper's introduction: a
// wireless sensor field reporting readings to a sink over QoS-aware routes.
//
// It brings up the full protocol stack (HELLO/TC over the discrete-event
// simulator), waits for convergence, then forwards a reading from every
// sensor to the sink hop-by-hop using each node's own routing table —
// exactly what a deployed OLSR network would do — and reports delivery,
// path quality against the centralized optimum, and the control-traffic
// price of the advertised sets.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"qolsr"
)

func main() {
	const (
		degree   = 10
		seed     = 21
		simTime  = 45 * time.Second
		fieldLen = 500.0
	)
	m := qolsr.Bandwidth()
	rng := rand.New(rand.NewSource(seed))
	dep := qolsr.Deployment{
		Field:  qolsr.Field{Width: fieldLen, Height: fieldLen},
		Radius: 100,
		Degree: degree,
	}
	g, err := qolsr.BuildNetwork(dep, m.Name(), qolsr.DefaultInterval(), rng)
	if err != nil {
		log.Fatal(err)
	}
	if g.N() < 3 {
		log.Fatal("degenerate deployment; change the seed")
	}
	sink := int32(0)
	fmt.Printf("sensor field: %d nodes, %d links; sink = node %d\n", g.N(), g.M(), sink)

	// Bring up the protocol stack with FNBP advertised sets.
	cfg := qolsr.DefaultProtocolConfig(m)
	nw, err := qolsr.NewNetwork(g, cfg, qolsr.NetworkOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	nw.Start()
	nw.Run(simTime)
	fmt.Printf("protocol ran %v: %d HELLOs, %d TCs, %.0f control bytes/s\n",
		simTime, nw.Stats.HelloMessages, nw.Stats.TCMessages, nw.ControlBytesPerSecond())

	// Each sensor forwards its reading hop-by-hop using the routing
	// tables its own protocol instance computed.
	now := nw.Engine.Now()
	tables := make([]*qolsr.Routes, g.N())
	for i, node := range nw.Nodes {
		tbl, err := node.Routes(now)
		if err != nil {
			log.Fatal(err)
		}
		tables[i] = tbl
	}
	next := func(at, dst int32) int32 {
		r, ok := tables[at].Lookup(int64(g.ID(dst)))
		if !ok {
			return -1
		}
		return g.IndexOf(qolsr.NodeID(r.NextHop))
	}

	w, err := g.Weights(m.Name())
	if err != nil {
		log.Fatal(err)
	}
	opt := qolsr.Dijkstra(g, m, w, sink, nil, -1)

	delivered, unreachable, failed := 0, 0, 0
	var worstOverhead, sumOverhead float64
	for s := int32(1); int(s) < g.N(); s++ {
		if !opt.Reachable(s) {
			unreachable++
			continue
		}
		path, ok := qolsr.Forward(next, s, sink, g.N()+1)
		if !ok {
			failed++
			continue
		}
		delivered++
		// Bottleneck bandwidth of the path actually taken.
		var value float64
		for i := 0; i+1 < len(path); i++ {
			e, _ := g.EdgeBetween(path[i], path[i+1])
			if i == 0 || w[e] < value {
				value = w[e]
			}
		}
		ov := qolsr.Overhead(m, value, opt.Dist[s])
		sumOverhead += ov
		if ov > worstOverhead {
			worstOverhead = ov
		}
	}
	fmt.Printf("readings: %d delivered, %d failed, %d physically unreachable\n",
		delivered, failed, unreachable)
	if delivered > 0 {
		fmt.Printf("bandwidth overhead vs centralized optimum: mean %.2f%%, worst %.2f%%\n",
			100*sumOverhead/float64(delivered), 100*worstOverhead)
	}
}
