// Paperfigures walks the paper's worked examples (Figs. 1, 2, 4 and 5) as
// executable code, printing each claim next to what the implementation
// computes. The same fixtures are asserted in the test suite; this program
// narrates them.
package main

import (
	"fmt"
	"log"
	"os"

	"qolsr"
	"qolsr/internal/paperex"
)

func main() {
	figure1()
	figure2()
	figure4()
	figure5()
}

func weights(f *paperex.Fixture) []float64 {
	w, err := f.G.Weights(paperex.Channel)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func labels(f *paperex.Fixture, idx []int32) []string {
	out := make([]string, len(idx))
	for i, x := range idx {
		out[i] = f.G.Label(x)
	}
	return out
}

// figure1 — "the widest path between v1 and v3 will not be used by QOLSR".
func figure1() {
	fmt.Println("== Figure 1: QOLSR misses the widest path ==")
	f := paperex.Figure1()
	m := qolsr.Bandwidth()

	// Every node advertises its full neighborhood here (in the 6-ring all
	// neighbors are mandatory MPRs); QOLSR still routes min-hop.
	sets := make([][]int32, f.G.N())
	for x := int32(0); int(x) < f.G.N(); x++ {
		for _, arc := range f.G.Arcs(x) {
			sets[x] = append(sets[x], arc.To)
		}
	}
	adv, err := qolsr.BuildAdvertised(f.G, sets, paperex.Channel)
	if err != nil {
		log.Fatal(err)
	}
	v1, v3 := f.Node("v1"), f.Node("v3")
	q, err := qolsr.EvaluatePair(f.G, adv, m, paperex.Channel, v1, v3, qolsr.MinHopThenQoS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QOLSR (min-hop) route v1->v3: bandwidth %.0f over %d hops (via v2)\n", q.Achieved, q.Hops)
	fmt.Printf("widest path value: %.0f (v1-v6-v5-v4-v3) — overhead %.0f%%\n", q.Optimal, 100*q.Overhead)
}

// figure2 — FNBP's selection narrative at node u.
func figure2() {
	fmt.Println("\n== Figure 2: FNBP selection at node u ==")
	f := paperex.Figure2()
	m := qolsr.Bandwidth()
	w := weights(f)
	u := f.Node("u")
	view := qolsr.NewLocalView(f.G, u)

	// The localization limit: u cannot see the link (v8,v9).
	local := qolsr.Dijkstra(f.G, m, w, u, view, -1)
	full := qolsr.Dijkstra(f.G, m, w, u, nil, -1)
	fmt.Printf("u's best path to v9 inside G_u: %.0f (via v7); in the full graph: %.0f (via v6-v8)\n",
		local.Dist[f.Node("v9")], full.Dist[f.Node("v9")])

	sel, err := qolsr.FNBP{}.SelectFull(view, m, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FNBP ANS(u) = %v\n", labels(f, sel.ANS))
	for _, target := range []string{"v4", "v5", "v3", "v10", "v11", "v9"} {
		hop := sel.Cover[f.Node(target)]
		fmt.Printf("  %s is served through %s\n", target, f.G.Label(hop))
	}
}

// figure4 — the mutual-selection loop and its fix.
func figure4() {
	fmt.Println("\n== Figure 4: the last-limiting-link loop and the fix ==")
	f := paperex.Figure4()
	m := qolsr.Bandwidth()
	w := weights(f)
	A, B, E := f.Node("A"), f.Node("B"), f.Node("E")

	cover := func(fn qolsr.FNBP, node int32) map[int32]int32 {
		sel, err := fn.SelectFull(qolsr.NewLocalView(f.G, node), m, w)
		if err != nil {
			log.Fatal(err)
		}
		return sel.Cover
	}
	broken := qolsr.FNBP{LoopFix: qolsr.LoopFixOff}
	fmt.Printf("without the rule: A forwards for E via %s, B via %s -> ping-pong loop, E unreachable\n",
		f.G.Label(cover(broken, A)[E]), f.G.Label(cover(broken, B)[E]))
	fixed := qolsr.FNBP{}
	fmt.Printf("with the rule:    A forwards for E via %s -> delivered through D's last link\n",
		f.G.Label(cover(fixed, A)[E]))
}

// figure5 — the three selected sets side by side, as DOT on stdout when
// requested.
func figure5() {
	fmt.Println("\n== Figure 5: set sizes on one topology ==")
	f := paperex.Figure5()
	m := qolsr.Bandwidth()
	w := weights(f)
	u := f.Node("u")
	view := qolsr.NewLocalView(f.G, u)

	mprs, err := qolsr.SelectMPR(view, qolsr.MPRGreedy, m, w)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := (qolsr.TopologyFilter{}).Select(view, m, w)
	if err != nil {
		log.Fatal(err)
	}
	fnbp, err := (qolsr.FNBP{}).Select(view, m, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPR set of u:              %v\n", labels(f, mprs))
	fmt.Printf("topology-filtered ANS:     %v\n", labels(f, tf))
	fmt.Printf("FNBP ANS:                  %v\n", labels(f, fnbp))

	if len(os.Args) > 1 && os.Args[1] == "-dot" {
		highlight := map[int32]bool{u: true}
		for _, x := range fnbp {
			highlight[x] = true
		}
		if err := qolsr.WriteDOT(os.Stdout, f.G, qolsr.DOTOptions{
			Name:           "figure5",
			WeightChannel:  paperex.Channel,
			HighlightNodes: highlight,
		}); err != nil {
			log.Fatal(err)
		}
	}
}
