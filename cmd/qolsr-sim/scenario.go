package main

// The scenario subcommand: run and list the dynamic-network scenarios of
// the Scenario API.
//
//	qolsr-sim scenario list                        # built-ins + selectors
//	qolsr-sim scenario run -name single-link-flap  # defaults: fnbp, 3 runs
//	qolsr-sim scenario run -name churn-storm -selector qolsr -runs 5 -json -

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"qolsr"
)

// runScenarioCmd dispatches "qolsr-sim scenario <verb>".
func runScenarioCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("scenario needs a verb: run or list")
	}
	switch args[0] {
	case "list":
		return listScenarios(os.Stdout)
	case "run":
		return runScenario(args[1:])
	default:
		return fmt.Errorf("unknown scenario verb %q (have run, list)", args[0])
	}
}

// listScenarios prints the built-in registry with descriptions.
func listScenarios(w *os.File) error {
	for _, def := range qolsr.BuiltInScenarios() {
		if _, err := fmt.Fprintf(w, "%-24s %s\n", def.Name, def.Description); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "\nselectors: fnbp (default), topofilter, qolsr, full")
	return err
}

// runScenario executes one built-in scenario with CLI overrides.
func runScenario(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	var (
		name       = fs.String("name", "", "built-in scenario to run (see: qolsr-sim scenario list)")
		selector   = fs.String("selector", "fnbp", "advertised-set selector: fnbp, topofilter, qolsr, full")
		runs       = fs.Int("runs", 0, "replicate runs (0 = default 3)")
		seed       = fs.Int64("seed", 1, "base RNG seed")
		workers    = fs.Int("workers", 0, "parallelism budget across replicate runs (0 = GOMAXPROCS)")
		csvPath    = fs.String("csv", "", "also write the result as long-form CSV to this file (\"-\" for stdout)")
		jsonPath   = fs.String("json", "", "also write the result as JSON to this file (\"-\" for stdout)")
		quiet      = fs.Bool("quiet", false, "suppress progress output")
		duration   = fs.Duration("duration", 0, "override the scenario duration")
		sample     = fs.Duration("sample", 0, "override the measurement cadence")
		flows      = fs.String("flows", "", "override the traffic: a bare integer overrides the probe flow count; \"class:count@rateBps,...\" (e.g. cbr:8@16384,video:4@24576) installs a sustained flow-class mix (classes: see -list)")
		medium     = fs.String("medium", "", "override the radio medium: ideal or lossy (see -list)")
		loss       = fs.Float64("loss", -1, "override the lossy medium's base packet-error rate, in [0,1)")
		measured   = fs.Bool("measured", false, "enable measured link quality (ETX-style) instead of oracle weights")
		metricsOut = fs.String("metrics-out", "", "collect the metrics registry and write its merged snapshot as JSON to this file (\"-\" for stdout)")
		tracePath  = fs.String("trace", "", "sample data-packet path traces and write them as Chrome trace-event JSON to this file (\"-\" for stdout; open in Perfetto)")
		traceEvery = fs.Int("trace-every", 64, "with -trace, sample 1 in N data packets (1 = trace everything)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("scenario run needs -name (see: qolsr-sim scenario list)")
	}
	stdoutSinks := 0
	for _, p := range []string{*jsonPath, *csvPath, *metricsOut, *tracePath} {
		if p == "-" {
			stdoutSinks++
		}
	}
	if stdoutSinks > 1 {
		return fmt.Errorf("-json, -csv, -metrics-out and -trace cannot share stdout")
	}
	if *tracePath != "" && *traceEvery < 1 {
		return fmt.Errorf("-trace-every needs a positive sampling period, got %d", *traceEvery)
	}

	sc, err := qolsr.ScenarioByName(*name, *selector)
	if err != nil {
		return err
	}
	if *duration > 0 {
		sc.Duration = *duration
		if sc.Warmup > *duration {
			sc.Warmup = *duration / 3
		}
		clampPhases(&sc)
	}
	if *sample > 0 {
		sc.SampleEvery = *sample
	}
	if *flows != "" {
		tr, err := parseFlows(*flows)
		if err != nil {
			return err
		}
		sc.Traffic = tr
	}
	if *medium != "" {
		if err := checkName(*medium, qolsr.MediumNames(), "medium"); err != nil {
			return err
		}
		sc.Medium.Kind = *medium
	}
	if *loss >= 0 {
		sc.Medium.Loss = *loss
		if sc.Medium.Kind == "" || sc.Medium.Kind == "ideal" {
			return fmt.Errorf("-loss requires the lossy medium (add -medium lossy)")
		}
	}
	if *measured {
		sc.Protocol.MeasuredQoS = true
	}
	if *metricsOut != "" {
		sc.Obs.Metrics = true
	}
	if *tracePath != "" {
		sc.Obs.TraceEvery = *traceEvery
	}

	// Ctrl-C / SIGTERM cancels the execution; replicate runs stop at the
	// next sample and the command reports the cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []qolsr.Option{
		qolsr.WithRuns(*runs),
		qolsr.WithSeed(*seed),
		qolsr.WithWorkers(*workers),
	}
	if !*quiet {
		opts = append(opts, qolsr.WithProgress(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}))
	}
	res, err := qolsr.RunScenario(ctx, sc, opts...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("scenario canceled")
		}
		return err
	}

	// An encoder targeting "-" owns stdout: suppress the human table so
	// the stream stays machine-parseable.
	if stdoutSinks == 0 {
		if err := res.WriteTable(os.Stdout); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		if err := writeOut(*csvPath, res.EncodeCSV); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeOut(*jsonPath, res.EncodeJSON); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := writeOut(*metricsOut, res.EncodeMetrics); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := writeOut(*tracePath, res.EncodeTrace); err != nil {
			return err
		}
	}
	return nil
}

// checkName rejects a value absent from a registry with an error listing
// every valid name — the one error shape all name-taking flags share.
func checkName(value string, valid []string, what string) error {
	for _, v := range valid {
		if v == value {
			return nil
		}
	}
	return fmt.Errorf("unknown %s %q (have %s)", what, value, strings.Join(valid, ", "))
}

// parseFlows interprets the -flows override: a bare integer keeps the
// legacy probe workload at that count; a comma-separated list of
// "class:count@rateBps" entries installs a sustained flow-class mix.
func parseFlows(spec string) (qolsr.ScenarioTraffic, error) {
	if n, err := strconv.Atoi(spec); err == nil {
		if n < 1 {
			return qolsr.ScenarioTraffic{}, fmt.Errorf("-flows needs a positive probe count, got %d", n)
		}
		return qolsr.ScenarioTraffic{Flows: n}, nil
	}
	var mix []qolsr.FlowSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		class, rest, ok := strings.Cut(part, ":")
		if !ok {
			return qolsr.ScenarioTraffic{}, fmt.Errorf("bad -flows entry %q, want class:count@rateBps", part)
		}
		if err := qolsr.CheckFlowClass(class); err != nil {
			return qolsr.ScenarioTraffic{}, err
		}
		countStr, rateStr, hasRate := strings.Cut(rest, "@")
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return qolsr.ScenarioTraffic{}, fmt.Errorf("bad flow count in -flows entry %q", part)
		}
		fspec := qolsr.FlowSpec{Class: class, Count: count}
		if hasRate {
			rate, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || rate <= 0 {
				return qolsr.ScenarioTraffic{}, fmt.Errorf("bad rate in -flows entry %q", part)
			}
			fspec.RateBps = rate
		}
		mix = append(mix, fspec)
	}
	if len(mix) == 0 {
		return qolsr.ScenarioTraffic{}, fmt.Errorf("-flows spec %q names no flows", spec)
	}
	return qolsr.ScenarioTraffic{Mix: mix}, nil
}

// clampPhases drops timeline phases and traffic-mix specs a shortened
// duration pushed past the end, so -duration overrides keep built-ins
// valid.
func clampPhases(sc *qolsr.Scenario) {
	kept := sc.Phases[:0:0]
	for _, ph := range sc.Phases {
		if ph.At <= sc.Duration {
			kept = append(kept, ph)
		}
	}
	sc.Phases = kept
	mix := sc.Traffic.Mix[:0:0]
	for _, sp := range sc.Traffic.Mix {
		if sp.Start <= sc.Duration {
			mix = append(mix, sp)
		}
	}
	sc.Traffic.Mix = mix
}
