package main

import (
	"strings"
	"testing"
	"time"

	"qolsr"
)

func TestParseDegrees(t *testing.T) {
	got, err := parseDegrees("10, 15,20")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 15 || got[2] != 20 {
		t.Errorf("parseDegrees = %v", got)
	}
	if got, err := parseDegrees(""); err != nil || got != nil {
		t.Errorf("empty spec: %v %v", got, err)
	}
	if _, err := parseDegrees("a,b"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestComposeExperiment(t *testing.T) {
	exp, err := composeExperiment("all", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Figures()) != 4 {
		t.Errorf("all figures = %d, want 4", len(exp.Figures()))
	}

	exp, err = composeExperiment("fig8, ablation-mprs", "")
	if err != nil {
		t.Fatal(err)
	}
	figs := exp.Figures()
	if len(figs) != 2 || figs[0].ID != "fig8" || figs[1].ID != "ablation-mprs" {
		t.Errorf("composed IDs wrong: %+v", figs)
	}

	// Ablation short forms resolve too.
	for _, name := range []string{"loopfix", "loopfix-size", "locallinks", "mprs", "policy", "upper"} {
		exp, err := composeExperiment("", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		figs := exp.Figures()
		if len(figs) != 1 || figs[0].ID == "" || len(figs[0].Protocols) < 2 || len(figs[0].Degrees) == 0 {
			t.Errorf("%s: incomplete figure %+v", name, figs)
		}
	}
	if _, err := composeExperiment("", "nope"); err == nil {
		t.Error("unknown ablation accepted")
	}
	if _, err := composeExperiment("fig99", ""); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRegistryListing(t *testing.T) {
	out := registryListing()
	for _, section := range []string{"sweeps", "quantities:", "routing policies:", "scenarios", "mediums"} {
		if !strings.Contains(out, section) {
			t.Errorf("listing missing section %q", section)
		}
	}
	for _, entry := range []string{"fig6", "ablation-mprs", "set-size", "qos-optimal", "minhop-then-qos", "static-baseline", "churn-storm", "lossy-degrade", "ideal", "lossy"} {
		if !strings.Contains(out, "  "+entry+"\n") {
			t.Errorf("listing missing entry %q", entry)
		}
	}
}

func TestScenarioCmdErrors(t *testing.T) {
	if err := runScenarioCmd(nil); err == nil {
		t.Error("missing verb accepted")
	}
	if err := runScenarioCmd([]string{"bogus"}); err == nil {
		t.Error("unknown verb accepted")
	}
	if err := runScenario(nil); err == nil {
		t.Error("run without -name accepted")
	}
	if err := runScenario([]string{"-name", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := runScenario([]string{"-name", "static-baseline", "-json", "-", "-csv", "-"}); err == nil {
		t.Error("shared stdout accepted")
	}
}

func TestClampPhases(t *testing.T) {
	sc, err := qolsr.ScenarioByName("single-link-flap", "")
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 50 * time.Second // the restore at 75s no longer fits
	clampPhases(&sc)
	if len(sc.Phases) != 1 {
		t.Fatalf("phases after clamp = %d, want 1", len(sc.Phases))
	}
	if sc.Phases[0].At != 45*time.Second {
		t.Errorf("kept phase at %v, want 45s", sc.Phases[0].At)
	}
}
