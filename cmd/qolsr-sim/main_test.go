package main

import "testing"

func TestParseDegrees(t *testing.T) {
	got, err := parseDegrees("10, 15,20")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 15 || got[2] != 20 {
		t.Errorf("parseDegrees = %v", got)
	}
	if got, err := parseDegrees(""); err != nil || got != nil {
		t.Errorf("empty spec: %v %v", got, err)
	}
	if _, err := parseDegrees("a,b"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestComposeExperiment(t *testing.T) {
	exp, err := composeExperiment("all", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Figures()) != 4 {
		t.Errorf("all figures = %d, want 4", len(exp.Figures()))
	}

	exp, err = composeExperiment("fig8, ablation-mprs", "")
	if err != nil {
		t.Fatal(err)
	}
	figs := exp.Figures()
	if len(figs) != 2 || figs[0].ID != "fig8" || figs[1].ID != "ablation-mprs" {
		t.Errorf("composed IDs wrong: %+v", figs)
	}

	// Ablation short forms resolve too.
	for _, name := range []string{"loopfix", "loopfix-size", "locallinks", "mprs", "policy", "upper"} {
		exp, err := composeExperiment("", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		figs := exp.Figures()
		if len(figs) != 1 || figs[0].ID == "" || len(figs[0].Protocols) < 2 || len(figs[0].Degrees) == 0 {
			t.Errorf("%s: incomplete figure %+v", name, figs)
		}
	}
	if _, err := composeExperiment("", "nope"); err == nil {
		t.Error("unknown ablation accepted")
	}
	if _, err := composeExperiment("fig99", ""); err == nil {
		t.Error("unknown figure accepted")
	}
}
