package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qolsr"
	"qolsr/internal/obs"
)

func TestParseDegrees(t *testing.T) {
	got, err := parseDegrees("10, 15,20")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 15 || got[2] != 20 {
		t.Errorf("parseDegrees = %v", got)
	}
	if got, err := parseDegrees(""); err != nil || got != nil {
		t.Errorf("empty spec: %v %v", got, err)
	}
	if _, err := parseDegrees("a,b"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestComposeExperiment(t *testing.T) {
	exp, err := composeExperiment("all", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Figures()) != 4 {
		t.Errorf("all figures = %d, want 4", len(exp.Figures()))
	}

	exp, err = composeExperiment("fig8, ablation-mprs", "")
	if err != nil {
		t.Fatal(err)
	}
	figs := exp.Figures()
	if len(figs) != 2 || figs[0].ID != "fig8" || figs[1].ID != "ablation-mprs" {
		t.Errorf("composed IDs wrong: %+v", figs)
	}

	// Ablation short forms resolve too.
	for _, name := range []string{"loopfix", "loopfix-size", "locallinks", "mprs", "policy", "upper"} {
		exp, err := composeExperiment("", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		figs := exp.Figures()
		if len(figs) != 1 || figs[0].ID == "" || len(figs[0].Protocols) < 2 || len(figs[0].Degrees) == 0 {
			t.Errorf("%s: incomplete figure %+v", name, figs)
		}
	}
	if _, err := composeExperiment("", "nope"); err == nil {
		t.Error("unknown ablation accepted")
	}
	if _, err := composeExperiment("fig99", ""); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRegistryListing(t *testing.T) {
	out := registryListing()
	for _, section := range []string{"sweeps", "quantities:", "routing policies:", "scenarios", "mediums", "flow classes"} {
		if !strings.Contains(out, section) {
			t.Errorf("listing missing section %q", section)
		}
	}
	for _, entry := range []string{"fig6", "ablation-mprs", "set-size", "qos-optimal", "minhop-then-qos", "static-baseline", "churn-storm", "lossy-degrade", "load-ramp", "video-vs-cbr", "ideal", "lossy"} {
		if !strings.Contains(out, "  "+entry+"\n") {
			t.Errorf("listing missing entry %q", entry)
		}
	}
	for _, class := range qolsr.FlowClassNames() {
		if !strings.Contains(out, "  "+class+" ") {
			t.Errorf("listing missing flow class %q", class)
		}
	}
}

func TestParseFlows(t *testing.T) {
	tr, err := parseFlows("12")
	if err != nil || tr.Flows != 12 || tr.Mix != nil {
		t.Errorf("bare integer: %+v, %v", tr, err)
	}
	tr, err = parseFlows("cbr:8@16384, video:4@24576")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Flows != 0 || len(tr.Mix) != 2 {
		t.Fatalf("mix parse: %+v", tr)
	}
	if tr.Mix[0].Class != "cbr" || tr.Mix[0].Count != 8 || tr.Mix[0].RateBps != 16384 {
		t.Errorf("first spec: %+v", tr.Mix[0])
	}
	if tr.Mix[1].Class != "video" || tr.Mix[1].Count != 4 {
		t.Errorf("second spec: %+v", tr.Mix[1])
	}
	// Rate is optional (spec defaults apply downstream).
	if tr, err = parseFlows("poisson:3"); err != nil || tr.Mix[0].RateBps != 0 {
		t.Errorf("rateless spec: %+v, %v", tr, err)
	}
	for _, bad := range []string{"0", "-3", "cbr", "cbr:zero", "cbr:0", "cbr:2@-5", "warez:3"} {
		if _, err := parseFlows(bad); err == nil {
			t.Errorf("bad -flows %q accepted", bad)
		}
	}
	// Unknown class errors must list the valid names.
	_, err = parseFlows("warez:3")
	for _, class := range qolsr.FlowClassNames() {
		if !strings.Contains(err.Error(), class) {
			t.Errorf("flow-class error %q does not list %q", err, class)
		}
	}
}

func TestCheckNameListsValid(t *testing.T) {
	if err := checkName("ideal", qolsr.MediumNames(), "medium"); err != nil {
		t.Fatal(err)
	}
	err := checkName("fso", qolsr.MediumNames(), "medium")
	if err == nil {
		t.Fatal("unknown medium accepted")
	}
	for _, m := range qolsr.MediumNames() {
		if !strings.Contains(err.Error(), m) {
			t.Errorf("medium error %q does not list %q", err, m)
		}
	}
	// The scenario run path routes -medium through the same check.
	if err := runScenario([]string{"-name", "static-baseline", "-medium", "fso"}); err == nil ||
		!strings.Contains(err.Error(), "ideal") {
		t.Errorf("-medium error does not list names: %v", err)
	}
	// Unknown -name lists the scenarios.
	err = runScenario([]string{"-name", "nope"})
	if err == nil || !strings.Contains(err.Error(), "static-baseline") {
		t.Errorf("-name error does not list scenarios: %v", err)
	}
	// Unknown -flows class lists the classes.
	if err := runScenario([]string{"-name", "static-baseline", "-flows", "warez:3"}); err == nil ||
		!strings.Contains(err.Error(), "cbr") {
		t.Errorf("-flows error does not list classes: %v", err)
	}
}

func TestScenarioCmdErrors(t *testing.T) {
	if err := runScenarioCmd(nil); err == nil {
		t.Error("missing verb accepted")
	}
	if err := runScenarioCmd([]string{"bogus"}); err == nil {
		t.Error("unknown verb accepted")
	}
	if err := runScenario(nil); err == nil {
		t.Error("run without -name accepted")
	}
	if err := runScenario([]string{"-name", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := runScenario([]string{"-name", "static-baseline", "-json", "-", "-csv", "-"}); err == nil {
		t.Error("shared stdout accepted")
	}
	if err := runScenario([]string{"-name", "static-baseline", "-metrics-out", "-", "-trace", "-"}); err == nil {
		t.Error("metrics and trace sharing stdout accepted")
	}
	if err := runScenario([]string{"-name", "static-baseline", "-trace", "t.json", "-trace-every", "0"}); err == nil {
		t.Error("non-positive -trace-every accepted")
	}
}

// The observability outputs ride the scenario run end to end: -metrics-out
// writes a qolsr-metrics/v1 snapshot, -trace a schema-valid Chrome
// trace-event document.
func TestScenarioObsOutputs(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	err := runScenario([]string{"-name", "static-baseline", "-quiet",
		"-runs", "1", "-duration", "12s", "-flows", "cbr:2@8192",
		"-metrics-out", metrics, "-trace", trace, "-trace-every", "1"})
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Schema  string `json:"schema"`
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics output does not parse: %v", err)
	}
	if doc.Schema != "qolsr-metrics/v1" {
		t.Errorf("metrics schema = %q", doc.Schema)
	}
	names := map[string]bool{}
	for _, m := range doc.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"qolsr_des_events_executed_total", "qolsr_ctrl_messages_total", "qolsr_traffic_packets_total"} {
		if !names[want] {
			t.Errorf("metrics output missing %s", want)
		}
	}

	if data, err = os.ReadFile(trace); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(data); err != nil {
		t.Errorf("trace output fails schema validation: %v", err)
	}
	if !strings.Contains(string(data), `"ph":"X"`) {
		t.Error("trace output has no hop spans")
	}
}

func TestClampPhases(t *testing.T) {
	sc, err := qolsr.ScenarioByName("single-link-flap", "")
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 50 * time.Second // the restore at 75s no longer fits
	clampPhases(&sc)
	if len(sc.Phases) != 1 {
		t.Fatalf("phases after clamp = %d, want 1", len(sc.Phases))
	}
	if sc.Phases[0].At != 45*time.Second {
		t.Errorf("kept phase at %v, want 45s", sc.Phases[0].At)
	}

	// Traffic-mix specs past the shortened duration are dropped too.
	lr, err := qolsr.ScenarioByName("load-ramp", "")
	if err != nil {
		t.Fatal(err)
	}
	lr.Duration = 70 * time.Second // the 90s wave no longer fits
	clampPhases(&lr)
	if len(lr.Traffic.Mix) != 2 {
		t.Fatalf("mix after clamp = %d specs, want 2", len(lr.Traffic.Mix))
	}
	if err := lr.WithDefaults().Validate(); err != nil {
		t.Errorf("clamped load-ramp invalid: %v", err)
	}
}
