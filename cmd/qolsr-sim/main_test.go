package main

import "testing"

func TestParseDegrees(t *testing.T) {
	got, err := parseDegrees("10, 15,20")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 15 || got[2] != 20 {
		t.Errorf("parseDegrees = %v", got)
	}
	if got, err := parseDegrees(""); err != nil || got != nil {
		t.Errorf("empty spec: %v %v", got, err)
	}
	if _, err := parseDegrees("a,b"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestAblationFigures(t *testing.T) {
	for _, name := range []string{"loopfix", "loopfix-size", "locallinks", "mprs", "policy", "upper"} {
		fig, err := ablationFigure(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fig.ID == "" || len(fig.Protocols) < 2 || len(fig.Degrees) == 0 {
			t.Errorf("%s: incomplete figure %+v", name, fig)
		}
	}
	if _, err := ablationFigure("nope"); err == nil {
		t.Error("unknown ablation accepted")
	}
}
