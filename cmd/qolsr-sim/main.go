// Command qolsr-sim regenerates the paper's evaluation figures and the
// repository's ablations from the command line, on the parallel streaming
// Experiment API.
//
// Usage:
//
//	qolsr-sim -figure fig6                  # one sweep (-list shows all)
//	qolsr-sim -figure all -runs 20          # faster, noisier
//	qolsr-sim -figure fig8,ablation-mprs    # compose sweeps by name
//	qolsr-sim -figure fig6 -json -          # machine-readable results
//	qolsr-sim -ablation control             # A4 on the live protocol stack
//
// Dynamic-network scenarios run on the live protocol stack through the
// scenario subcommand:
//
//	qolsr-sim scenario list                 # built-in scenarios
//	qolsr-sim scenario run -name single-link-flap -selector fnbp
//
// Tables go to stdout; progress goes to stderr. Ctrl-C cancels a sweep or
// scenario promptly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"qolsr"
)

func main() {
	var err error
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		err = runScenarioCmd(os.Args[2:])
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qolsr-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figureID   = flag.String("figure", "", "comma-separated sweeps to run (see -list), or \"all\" for fig6..fig9")
		ablation   = flag.String("ablation", "", "ablation short form to run instead: loopfix, locallinks, mprs, policy, upper, control, loss, load, scale, overhead")
		runs       = flag.Int("runs", 100, "independent topologies per density point")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		workers    = flag.Int("workers", 0, "parallelism budget across points and runs (0 = GOMAXPROCS)")
		csvPath    = flag.String("csv", "", "also write the result as CSV to this file (\"-\" for stdout)")
		jsonPath   = flag.String("json", "", "also write the result as JSON to this file (\"-\" for stdout)")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		degrees    = flag.String("degrees", "", "override the density axis, e.g. 10,15,20")
		list       = flag.Bool("list", false, "list sweeps, quantities, routing policies and scenarios, then exit")
		scaleMax   = flag.Int("scale-max", 0, "-ablation scale: cap the default node-count axis (0 = the sweep's default)")
		scaleMin   = flag.Int("scale-min", 0, "-ablation scale: cut the default node-count axis from below (0 = no cut)")
		scaleOpt   = flag.Bool("scale-opt", false, "-ablation scale: enable every control-plane optimisation (delta TCs, fish-eye, min-cover relays)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qolsr-sim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qolsr-sim:", err)
			}
		}()
	}

	if *list {
		fmt.Print(registryListing())
		return nil
	}

	// Ctrl-C / SIGTERM cancels the sweep; workers stop promptly and the
	// run reports context.Canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	degreeAxis, err := parseDegrees(*degrees)
	if err != nil {
		return err
	}

	opts := []qolsr.Option{
		qolsr.WithRuns(*runs),
		qolsr.WithSeed(*seed),
		qolsr.WithWorkers(*workers),
	}
	if degreeAxis != nil {
		opts = append(opts, qolsr.WithDegrees(degreeAxis...))
	}
	if !*quiet {
		opts = append(opts, qolsr.WithProgress(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}))
	}
	r := qolsr.NewRunner(opts...)

	if *ablation == "control" {
		// A4 runs on the live protocol stack, not the figure harness,
		// and its result has only a table form.
		if *jsonPath != "" || *csvPath != "" {
			return fmt.Errorf("-ablation control has table output only; -json/-csv are not supported")
		}
		res, err := r.ControlSweep(ctx, qolsr.ControlSweepOptions{})
		if err != nil {
			return err
		}
		return res.WriteTable(os.Stdout)
	}

	if *ablation == "loss" {
		// A7 runs the live stack over the lossy medium; table form only.
		if *jsonPath != "" || *csvPath != "" {
			return fmt.Errorf("-ablation loss has table output only; -json/-csv are not supported")
		}
		res, err := r.LossSweep(ctx, qolsr.LossSweepOptions{})
		if err != nil {
			return err
		}
		return res.WriteTable(os.Stdout)
	}

	if *ablation == "load" {
		// A8 drives sustained QoS flows on the live stack; table form only.
		if *jsonPath != "" || *csvPath != "" {
			return fmt.Errorf("-ablation load has table output only; -json/-csv are not supported")
		}
		res, err := r.LoadSweep(ctx, qolsr.LoadSweepOptions{})
		if err != nil {
			return err
		}
		return res.WriteTable(os.Stdout)
	}

	if *ablation == "scale" {
		// S1 measures simulator throughput against node count on the
		// live stack; table form only.
		if *jsonPath != "" || *csvPath != "" {
			return fmt.Errorf("-ablation scale has table output only; -json/-csv are not supported")
		}
		res, err := r.ScaleSweep(ctx, qolsr.ScaleSweepOptions{
			MaxNodes: *scaleMax,
			MinNodes: *scaleMin,
			Optimize: *scaleOpt,
			Workers:  *workers,
		})
		if err != nil {
			return err
		}
		return res.WriteTable(os.Stdout)
	}

	if *ablation == "overhead" {
		// O1 compares control-plane optimisations on the live stack; its
		// JSON form is the BENCH_overhead.json artifact.
		if *csvPath != "" {
			return fmt.Errorf("-ablation overhead has table and JSON output only; -csv is not supported")
		}
		res, err := r.OverheadSweep(ctx, qolsr.OverheadSweepOptions{})
		if err != nil {
			return err
		}
		if *jsonPath != "" {
			if *jsonPath != "-" {
				if err := res.WriteTable(os.Stdout); err != nil {
					return err
				}
			}
			return writeOut(*jsonPath, res.EncodeJSON)
		}
		return res.WriteTable(os.Stdout)
	}

	if *jsonPath == "-" && *csvPath == "-" {
		return fmt.Errorf("-json - and -csv - cannot share stdout")
	}

	exp, err := composeExperiment(*figureID, *ablation)
	if err != nil {
		return err
	}
	res, err := r.Run(ctx, exp)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("sweep canceled")
		}
		return err
	}

	// An encoder targeting "-" owns stdout: suppress the human tables so
	// the stream stays machine-parseable.
	if *jsonPath != "-" && *csvPath != "-" {
		if err := res.WriteTables(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		for _, fr := range res.Figures {
			if fr.Figure.ID == "ablation-loopfix" {
				if err := fr.WriteDeliveryTable(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
			}
		}
	}
	if *csvPath != "" {
		if err := writeOut(*csvPath, res.EncodeCSV); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeOut(*jsonPath, res.EncodeJSON); err != nil {
			return err
		}
	}
	return nil
}

// registryListing renders every composable registry: sweeps (figures and
// ablations), reportable quantities, routing policies and the built-in
// scenarios with their run verb.
func registryListing() string {
	var b strings.Builder
	b.WriteString("sweeps (-figure / -ablation):\n")
	for _, id := range qolsr.SweepIDs() {
		fmt.Fprintf(&b, "  %s\n", id)
	}
	b.WriteString("quantities:\n")
	for _, q := range qolsr.QuantityNames() {
		fmt.Fprintf(&b, "  %s\n", q)
	}
	b.WriteString("routing policies:\n")
	for _, p := range qolsr.RoutePolicyNames() {
		fmt.Fprintf(&b, "  %s\n", p)
	}
	b.WriteString("scenarios (scenario run -name):\n")
	for _, s := range qolsr.ScenarioNames() {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	b.WriteString("mediums (scenario run -medium):\n")
	for _, m := range qolsr.MediumNames() {
		fmt.Fprintf(&b, "  %s\n", m)
	}
	b.WriteString("flow classes (scenario run -flows class:count@rateBps):\n")
	for _, c := range qolsr.FlowClasses() {
		fmt.Fprintf(&b, "  %-10s %s\n", c.Name, c.Description)
	}
	return b.String()
}

// composeExperiment builds the experiment from the -figure / -ablation
// flags: a comma-separated ID list, "all"/empty for the paper figures, or
// an ablation short form.
func composeExperiment(figureID, ablation string) (*qolsr.Experiment, error) {
	switch {
	case ablation != "":
		return qolsr.ExperimentByID(ablation)
	case figureID == "all" || figureID == "":
		return qolsr.PaperExperiment(), nil
	default:
		var ids []string
		for _, id := range strings.Split(figureID, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
		return qolsr.ExperimentByID(ids...)
	}
}

// writeOut encodes to path, with "-" meaning stdout.
func writeOut(path string, encode func(w io.Writer) error) error {
	if path == "-" {
		return encode(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := encode(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// parseDegrees parses a comma-separated density axis; empty means "use the
// figure's default".
func parseDegrees(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad density %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
