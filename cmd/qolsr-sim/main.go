// Command qolsr-sim regenerates the paper's evaluation figures and the
// repository's ablations from the command line.
//
// Usage:
//
//	qolsr-sim -figure fig6            # one figure (fig6..fig9, or "all")
//	qolsr-sim -figure fig8 -runs 20   # faster, noisier
//	qolsr-sim -ablation loopfix       # A1: loop-fix variants
//	qolsr-sim -figure fig6 -csv out.csv
//
// Tables go to stdout; progress goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qolsr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qolsr-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figureID = flag.String("figure", "", "figure to regenerate: fig6, fig7, fig8, fig9 or all")
		ablation = flag.String("ablation", "", "ablation to run instead: loopfix, locallinks, mprs, policy, upper")
		runs     = flag.Int("runs", 100, "independent topologies per density point")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		workers  = flag.Int("workers", 0, "run-level parallelism (0 = GOMAXPROCS)")
		csvPath  = flag.String("csv", "", "also write the result as CSV to this file")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		degrees  = flag.String("degrees", "", "override the density axis, e.g. 10,15,20")
	)
	flag.Parse()

	degreeAxis, err := parseDegrees(*degrees)
	if err != nil {
		return err
	}

	opts := qolsr.FigureOptions{Runs: *runs, Seed: *seed, Workers: *workers}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var figures []qolsr.Figure
	switch {
	case *ablation == "control":
		// A4 runs on the live protocol stack, not the figure harness.
		res, err := qolsr.RunControlSweep(qolsr.ControlSweepOptions{
			Runs:    max(1, *runs/20),
			Seed:    *seed,
			Degrees: degreeAxis,
		})
		if err != nil {
			return err
		}
		return res.WriteTable(os.Stdout)
	case *ablation != "":
		fig, err := ablationFigure(*ablation)
		if err != nil {
			return err
		}
		figures = []qolsr.Figure{fig}
	case *figureID == "all" || *figureID == "":
		figures = qolsr.PaperFigures()
	default:
		fig, err := qolsr.FigureByID(*figureID)
		if err != nil {
			return err
		}
		figures = []qolsr.Figure{fig}
	}
	if degreeAxis != nil {
		for i := range figures {
			figures[i].Degrees = degreeAxis
		}
	}

	for _, fig := range figures {
		res, err := qolsr.RunFigure(fig, opts)
		if err != nil {
			return err
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if fig.ID == "ablation-loopfix" {
			if err := res.WriteDeliveryTable(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				return err
			}
			werr := res.WriteCSV(f)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
	}
	return nil
}

// parseDegrees parses a comma-separated density axis; empty means "use the
// figure's default".
func parseDegrees(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad density %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ablationFigure assembles an ablation sweep reusing the paper's density
// axis.
func ablationFigure(name string) (qolsr.Figure, error) {
	base := qolsr.Figure{
		Metric:  qolsr.Bandwidth(),
		Degrees: []float64{10, 15, 20, 25, 30, 35},
	}
	switch name {
	case "loopfix":
		base.ID = "ablation-loopfix"
		base.Title = "A1: FNBP loop-fix variants (directed-advertisement delivery ratio)"
		base.Quantity = "directed-delivery"
		base.Protocols = qolsr.LoopFixAblation()
	case "loopfix-size":
		base.ID = "ablation-loopfix-size"
		base.Title = "A1: FNBP loop-fix variants (advertised-set size)"
		base.Quantity = "set-size"
		base.Protocols = qolsr.LoopFixAblation()
	case "locallinks":
		base.ID = "ablation-locallinks"
		base.Title = "A2: overhead with and without the source's local links"
		base.Quantity = "overhead"
		base.Protocols = qolsr.LocalLinksAblation()
	case "mprs":
		base.ID = "ablation-mprs"
		base.Title = "MPR heuristics as advertised sets (set size)"
		base.Quantity = "set-size"
		base.Protocols = qolsr.MPRHeuristicAblation()
	case "policy":
		base.ID = "ablation-policy"
		base.Title = "A6: QOLSR routing-policy readings (overhead)"
		base.Quantity = "overhead"
		base.Protocols = qolsr.RoutingPolicyAblation()
	case "upper":
		base.ID = "ablation-upper"
		base.Title = "Paper protocols + full link-state bound (overhead)"
		base.Quantity = "overhead"
		base.Protocols = qolsr.UpperBoundProtocols()
	default:
		return qolsr.Figure{}, fmt.Errorf("unknown ablation %q", name)
	}
	return base, nil
}
