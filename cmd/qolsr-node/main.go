// Command qolsr-node runs one QOLSR daemon over real UDP: the same
// HELLO/TC protocol engine the simulator drives, here driven by wall-clock
// timers and a bound socket. Peers are declared statically (the peer table
// stands in for radio range); link delay is measured live from HELLO
// round-trip timestamps unless -measured=false selects the declared oracle
// weights instead.
//
// Usage:
//
//	qolsr-node -id 1 -listen 127.0.0.1:9001 \
//	    -peers 2@127.0.0.1:9002,3@127.0.0.1:9003 \
//	    -status 127.0.0.1:8001
//
// The -status endpoint serves the daemon's neighbors, MPR set, routing
// table and traffic counters as JSON on /status, and the same counters in
// Prometheus text format on /metrics; it binds loopback only. -pprof
// additionally mounts net/http/pprof profiling on the same listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/metric"
	"qolsr/internal/node"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qolsr-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id         = flag.Int64("id", 0, "node identifier, unique across the mesh (required)")
		listen     = flag.String("listen", "127.0.0.1:0", "UDP address to bind")
		peersFlag  = flag.String("peers", "", `static peer list: "id@host:port" entries, comma-separated, optional "#weight" suffix`)
		peersFile  = flag.String("peers-file", "", `JSON peer table: [{"id":2,"addr":"127.0.0.1:9002","weight":1}, ...]`)
		hello      = flag.Duration("hello", 2*time.Second, "HELLO emission interval")
		tc         = flag.Duration("tc", 5*time.Second, "TC emission interval")
		measured   = flag.Bool("measured", true, "measure link delay from HELLO round trips (false: use declared peer weights)")
		metricName = flag.String("metric", "delay", "QoS metric: bandwidth, delay, hop or energy")
		selName    = flag.String("selector", "fnbp", "advertised-set selector: fnbp, topofilter, qolsr, full")
		statusAddr = flag.String("status", "", "loopback address for the HTTP status endpoint (e.g. 127.0.0.1:8001); empty disables it")
		pprofFlag  = flag.Bool("pprof", false, "with -status, also serve net/http/pprof under /debug/pprof/ on the status listener")
		ttl        = flag.Uint("ttl", 32, "initial TTL of originated data packets")
		verbose    = flag.Bool("v", false, "log protocol events")
	)
	flag.Parse()

	if *id <= 0 {
		return errors.New("-id is required and must be positive")
	}
	m, err := metric.ByName(*metricName)
	if err != nil {
		return err
	}
	sel, err := core.ByName(*selName)
	if err != nil {
		return err
	}
	if *ttl == 0 || *ttl > 255 {
		return fmt.Errorf("-ttl %d out of range [1,255]", *ttl)
	}

	var peers []node.Peer
	if *peersFile != "" {
		if peers, err = node.ReadPeersFile(*peersFile); err != nil {
			return err
		}
	}
	if *peersFlag != "" {
		extra, err := node.ParsePeerList(*peersFlag)
		if err != nil {
			return err
		}
		peers = append(peers, extra...)
	}
	if len(peers) == 0 {
		return errors.New("no peers: pass -peers and/or -peers-file")
	}

	tr, err := node.ListenUDP(*listen)
	if err != nil {
		return err
	}

	cfg := node.Config{
		ID:            *id,
		Transport:     tr,
		Peers:         peers,
		HelloInterval: *hello,
		TCInterval:    *tc,
		Metric:        m,
		Selector:      sel,
		Measured:      *measured,
		TTL:           uint8(*ttl),
	}
	if *verbose {
		logger := log.New(os.Stderr, fmt.Sprintf("node %d: ", *id), log.Ltime|log.Lmicroseconds)
		cfg.Logf = logger.Printf
	}
	d, err := node.New(cfg)
	if err != nil {
		tr.Close()
		return err
	}

	mode := "oracle"
	if *measured {
		mode = "measured"
	}
	log.Printf("qolsr-node %d listening on %s (%s mode, metric %s, selector %s, %d peers)",
		*id, tr.LocalAddr(), mode, m.Name(), sel.Name(), len(peers))

	if *statusAddr != "" {
		ln, err := listenLoopback(*statusAddr)
		if err != nil {
			tr.Close()
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/", d.StatusHandler())
		if *pprofFlag {
			// Explicit registrations, not DefaultServeMux: the profiling
			// surface exists only when asked for, only on this loopback
			// listener.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		log.Printf("status endpoint on http://%s/status (metrics on /metrics)", ln.Addr())
		if *pprofFlag {
			log.Printf("pprof endpoint on http://%s/debug/pprof/", ln.Addr())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	d.Run(ctx)
	log.Printf("qolsr-node %d stopped", *id)
	return nil
}

// listenLoopback binds a TCP listener and refuses non-loopback addresses:
// the status report is operator introspection, not a public API.
func listenLoopback(addr string) (net.Listener, error) {
	ta, err := net.ResolveTCPAddr("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("status address %q: %w", addr, err)
	}
	if ta.IP != nil && !ta.IP.IsLoopback() {
		return nil, fmt.Errorf("status address %q is not loopback; the endpoint is local introspection only", addr)
	}
	if ta.IP == nil {
		ta.IP = net.IPv4(127, 0, 0, 1)
	}
	return net.ListenTCP("tcp", ta)
}
