// Command qolsr-graph renders topologies and selected neighbor sets as
// Graphviz DOT, reproducing the style of the paper's Fig. 5 (MPR set vs
// topology-filtered ANS vs FNBP ANS on the same network).
//
// Usage:
//
//	qolsr-graph -example fig2                 # a worked example's topology
//	qolsr-graph -example fig5 -selector fnbp  # highlight a selection at u
//	qolsr-graph -random -degree 10 -node 0    # a random deployment
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"qolsr"
	"qolsr/internal/paperex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qolsr-graph:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		example    = flag.String("example", "", "worked example: fig1, fig2, fig4, fig5")
		random     = flag.Bool("random", false, "render a random Poisson deployment instead")
		degree     = flag.Float64("degree", 8, "target degree for -random")
		seed       = flag.Int64("seed", 1, "RNG seed for -random")
		nodeIdx    = flag.Int("node", 0, "center node whose selection to highlight")
		selName    = flag.String("selector", "fnbp", "selector to highlight: fnbp, topofilter, qolsr, full")
		metricName = flag.String("metric", "bandwidth", "QoS metric")
	)
	flag.Parse()

	m, err := qolsr.MetricByName(*metricName)
	if err != nil {
		return err
	}
	sel, err := qolsr.SelectorByName(*selName)
	if err != nil {
		return err
	}

	var g *qolsr.Graph
	name := *example
	switch {
	case *random:
		rng := rand.New(rand.NewSource(*seed))
		dep := qolsr.Deployment{Field: qolsr.Field{Width: 400, Height: 400}, Radius: 100, Degree: *degree}
		g, err = qolsr.BuildNetwork(dep, m.Name(), qolsr.DefaultInterval(), rng)
		if err != nil {
			return err
		}
		name = "random"
	case *example != "":
		var f *paperex.Fixture
		switch *example {
		case "fig1":
			f = paperex.Figure1()
		case "fig2":
			f = paperex.Figure2()
		case "fig4":
			f = paperex.Figure4()
		case "fig5":
			f = paperex.Figure5()
		default:
			return fmt.Errorf("unknown example %q (have fig1, fig2, fig4, fig5)", *example)
		}
		g = f.G
	default:
		return fmt.Errorf("pass -example or -random")
	}

	if *nodeIdx < 0 || *nodeIdx >= g.N() {
		return fmt.Errorf("node %d out of range [0,%d)", *nodeIdx, g.N())
	}
	u := int32(*nodeIdx)
	w, err := g.Weights(m.Name())
	if err != nil {
		return err
	}
	view := qolsr.NewLocalView(g, u)
	ans, err := sel.Select(view, m, w)
	if err != nil {
		return err
	}

	highlightNodes := map[int32]bool{u: true}
	highlightEdges := map[int32]bool{}
	for _, a := range ans {
		highlightNodes[a] = true
		if e, ok := g.EdgeBetween(u, a); ok {
			highlightEdges[int32(e)] = true
		}
	}
	fmt.Fprintf(os.Stderr, "%s selection at %s: %d neighbors\n", sel.Name(), g.Label(u), len(ans))
	return qolsr.WriteDOT(os.Stdout, g, qolsr.DOTOptions{
		Name:           fmt.Sprintf("%s-%s-%s", name, sel.Name(), m.Name()),
		WeightChannel:  m.Name(),
		HighlightNodes: highlightNodes,
		HighlightEdges: highlightEdges,
	})
}
