// Command qolsr-net runs the full OLSR/QOLSR protocol stack (HELLO/TC
// exchange over an ideal-MAC discrete-event simulation) on a random Poisson
// deployment, then reports convergence against the offline selection,
// control-traffic cost, and a sample routing table.
//
// Usage:
//
//	qolsr-net -degree 15 -duration 60s
//	qolsr-net -metric delay -selector topofilter
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"time"

	"qolsr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qolsr-net:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		degree     = flag.Float64("degree", 12, "target mean node degree δ")
		seed       = flag.Int64("seed", 1, "RNG seed")
		duration   = flag.Duration("duration", 60*time.Second, "virtual time to simulate")
		metricName = flag.String("metric", "bandwidth", "QoS metric: bandwidth or delay")
		selName    = flag.String("selector", "fnbp", "advertised-set selector: fnbp, topofilter, qolsr, full")
		fieldSide  = flag.Float64("field", 600, "deployment field side length")
		speed      = flag.Float64("speed", 0, "random-waypoint max speed (units/s); 0 = static network")
	)
	flag.Parse()

	m, err := qolsr.MetricByName(*metricName)
	if err != nil {
		return err
	}
	sel, err := qolsr.SelectorByName(*selName)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	dep := qolsr.Deployment{
		Field:  qolsr.Field{Width: *fieldSide, Height: *fieldSide},
		Radius: 100,
		Degree: *degree,
	}
	cfg := qolsr.DefaultProtocolConfig(m)
	cfg.Selector = sel
	start := time.Now()

	var nw *qolsr.Network
	var g *qolsr.Graph
	if *speed > 0 {
		// Mobile network: same deployment law for initial positions,
		// then random-waypoint motion with 1 Hz topology refresh.
		pts, err := dep.Sample(rng)
		if err != nil {
			return err
		}
		model := qolsr.Waypoint{
			Field:    dep.Field,
			MinSpeed: *speed / 2,
			MaxSpeed: *speed,
			Pause:    2 * time.Second,
		}
		ms, err := qolsr.NewMobileSim(model, pts, dep.Radius, cfg, qolsr.NetworkOptions{Seed: *seed}, time.Second, *seed+1)
		if err != nil {
			return err
		}
		fmt.Printf("mobile deployment: %d nodes (δ target %g, field %gx%g, R=100, max speed %g u/s)\n",
			len(pts), *degree, *fieldSide, *fieldSide, *speed)
		ms.Start()
		ms.Run(*duration)
		nw, g = ms.NW, ms.NW.Phys
		fmt.Printf("topology rebuilds: %d\n", ms.Rebuilds)
	} else {
		var err error
		g, err = qolsr.BuildNetwork(dep, m.Name(), qolsr.DefaultInterval(), rng)
		if err != nil {
			return err
		}
		fmt.Printf("deployment: %d nodes, %d links (δ target %g, field %gx%g, R=100)\n",
			g.N(), g.M(), *degree, *fieldSide, *fieldSide)
		nw, err = qolsr.NewNetwork(g, cfg, qolsr.NetworkOptions{Seed: *seed})
		if err != nil {
			return err
		}
		nw.Start()
		nw.Run(*duration)
	}
	fmt.Printf("simulated %v of protocol time in %v wall time (%d events)\n",
		*duration, time.Since(start).Round(time.Millisecond), nw.Engine.Executed)

	// Convergence: distributed ANS vs offline selection on the true graph.
	w, err := g.Weights(m.Name())
	if err != nil {
		return err
	}
	sets, err := nw.ANSSets()
	if err != nil {
		return err
	}
	matched, total := 0, 0
	var meanSize float64
	for u := int32(0); int(u) < g.N(); u++ {
		view := qolsr.NewLocalView(g, u)
		want, err := sel.Select(view, m, w)
		if err != nil {
			return err
		}
		total++
		meanSize += float64(len(sets[u]))
		if reflect.DeepEqual(normalize(sets[u]), normalize(want)) {
			matched++
		}
	}
	fmt.Printf("convergence: %d/%d nodes match the offline %s selection\n", matched, total, sel.Name())
	fmt.Printf("advertised set size: %.2f neighbors/node (distributed)\n", meanSize/float64(total))

	s := nw.Stats
	fmt.Printf("control traffic: %d HELLOs (%d B), %d TCs incl. forwards (%d B), %.1f B/s total\n",
		s.HelloMessages, s.HelloBytes, s.TCMessages, s.TCBytes, nw.ControlBytesPerSecond())

	// Sample routing table from node 0.
	routes, err := nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		return err
	}
	fmt.Printf("node %d routing table: %d destinations", nw.Nodes[0].ID, routes.Len())
	for i := 0; i < routes.Len() && i < 5; i++ {
		dst, r := routes.At(i)
		fmt.Printf("\n  -> %d via %d (%s %.2f, %d hops)", dst, r.NextHop, m.Name(), r.Value, r.Hops)
	}
	fmt.Println()
	return nil
}

func normalize(s []int32) []int32 {
	if s == nil {
		return []int32{}
	}
	return s
}
