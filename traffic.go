package qolsr

// The traffic API: sustained QoS flows on the live protocol stack. Flow
// classes (CBR, Poisson, on-off "video") offer load packet by packet
// through the routing tables and the radio medium; an admission gate checks
// each flow's requested QoS (bandwidth floor, delay ceiling, jitter bound)
// against the selected path before the flow may start, and per-flow
// accounting reports delivery, throughput, delay quantiles, jitter and the
// QoS verdicts (satisfied / violated / correct-reject / false-reject).
//
// Scenarios carry a flow mix in their Traffic spec:
//
//	sc, _ := qolsr.ScenarioByName("video-vs-cbr", "fnbp")
//	res, _ := qolsr.RunScenario(ctx, sc, qolsr.WithRuns(3))
//	res.WriteTable(os.Stdout) // includes the per-class traffic section
//
// The satisfaction-vs-offered-load experiment (A8) compares the paper's
// QoS-based selection against hop-count selection under growing load:
//
//	res, _ := qolsr.NewRunner().LoadSweep(ctx, qolsr.LoadSweepOptions{})
//	res.WriteTable(os.Stdout)

import (
	"context"

	"qolsr/internal/eval"
	"qolsr/internal/scenario"
	"qolsr/internal/traffic"
)

// Flow definitions.
type (
	// FlowSpec is one flow-class entry of a scenario traffic mix.
	FlowSpec = traffic.Spec
	// FlowRequirements is a flow's requested QoS: bandwidth floor, delay
	// ceiling, jitter bound.
	FlowRequirements = traffic.Requirements
	// Flow is one concrete flow bound to its endpoints.
	Flow = traffic.Flow
	// FlowClassInfo describes one built-in flow class.
	FlowClassInfo = traffic.ClassInfo
	// FlowDecision is one admission-control verdict with its path
	// evidence.
	FlowDecision = traffic.Decision
	// FlowVerdict is a flow's end-of-run QoS classification.
	FlowVerdict = traffic.Verdict
	// FlowReport is one flow's end-of-run record.
	FlowReport = traffic.FlowReport
	// FlowClassReport aggregates one flow class of one run.
	FlowClassReport = traffic.ClassReport
	// TrafficReport is a run's complete flow accounting.
	TrafficReport = traffic.Report
	// TrafficEngine drives sustained flows through a live network (custom
	// harnesses; scenarios build one from their Traffic.Mix).
	TrafficEngine = traffic.Engine
	// AdmissionGate decides flow admission on a live network's routing
	// state.
	AdmissionGate = traffic.Gate
	// ScenarioClassAggregate folds one flow class across replicate runs.
	ScenarioClassAggregate = scenario.ClassAggregate
)

// Built-in flow-class names.
const (
	// FlowClassCBR is the constant-bit-rate class.
	FlowClassCBR = traffic.ClassCBR
	// FlowClassPoisson is the Poisson-arrivals class.
	FlowClassPoisson = traffic.ClassPoisson
	// FlowClassVideo is the on-off bursty VBR class.
	FlowClassVideo = traffic.ClassVideo
)

// Flow verdicts.
const (
	// FlowSatisfied: admitted and every requirement met.
	FlowSatisfied = traffic.VerdictSatisfied
	// FlowViolated: admitted but the measured traffic broke a requirement.
	FlowViolated = traffic.VerdictViolated
	// FlowCorrectReject: rejected and no satisfying path existed.
	FlowCorrectReject = traffic.VerdictCorrectReject
	// FlowFalseReject: rejected although a satisfying path existed.
	FlowFalseReject = traffic.VerdictFalseReject
)

// Flow-class registry.
var (
	// FlowClasses returns the built-in flow classes with descriptions.
	FlowClasses = traffic.Classes
	// FlowClassNames lists the built-in flow-class names.
	FlowClassNames = traffic.ClassNames
	// CheckFlowClass validates a flow-class name, listing the valid names
	// on error.
	CheckFlowClass = traffic.CheckClass
	// NewTrafficEngine builds a traffic engine over a network.
	NewTrafficEngine = traffic.NewEngine
	// FlowsFromSpecs expands a mix of specs over endpoint pairs.
	FlowsFromSpecs = traffic.FlowsFromSpecs
)

// Load sweep (experiment A8).
type (
	// LoadSweepOptions configures the A8 satisfaction-vs-offered-load
	// experiment.
	LoadSweepOptions = eval.LoadSweepOptions
	// LoadSweepResult is Runner.LoadSweep's outcome.
	LoadSweepResult = eval.LoadSweepResult
	// LoadPoint is one (load, selection, mode) measurement.
	LoadPoint = eval.LoadPoint
)

// LoadSelections lists the compared selection policies ("qos", "hop").
var LoadSelections = eval.LoadSelections

// LoadSweep measures QoS satisfaction against offered load on the live
// protocol stack (experiment A8): sustained CBR flows over the lossy queued
// radio, the paper's QoS-based selection vs hop-count selection, oracle vs
// measured link sensing. It honours ctx and the runner's seed/runs options
// where the sweep's own are unset.
func (r *Runner) LoadSweep(ctx context.Context, opts LoadSweepOptions) (*LoadSweepResult, error) {
	if opts.Seed == 0 {
		opts.Seed = r.opts.Seed
	}
	if opts.Runs <= 0 && r.opts.Runs > 0 {
		// Same live-stack cost scaling as ControlSweep and LossSweep.
		opts.Runs = max(1, r.opts.Runs/20)
	}
	return eval.RunLoadSweep(ctx, opts)
}
