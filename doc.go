// Package qolsr is a from-scratch reproduction of "Towards an efficient QoS
// based selection of neighbors in QOLSR" (Khadar, Mitton, Simplot-Ryl; SN
// 2010 workshop at IEEE ICDCS 2010).
//
// The paper's contribution is FNBP — "first node on best path" — a QoS
// Advertised Neighbor Set (QANS) selection rule for OLSR-style proactive
// routing in wireless ad hoc and sensor networks: each node computes, inside
// its two-hop local view, the QoS-optimal paths to every 1- and 2-hop
// neighbor and advertises a minimal set of optimal first hops. Compared to
// the original QOLSR MPR heuristics and to RNG topology filtering, FNBP
// advertises far fewer neighbors while keeping routed paths within a few
// percent of the centralized optimum.
//
// This module provides:
//
//   - the selection algorithms (FNBP, QOLSR MPR-1/MPR-2, RFC 3626 greedy
//     MPR, RNG topology filtering), generic over additive (delay-like) and
//     concave (bandwidth-like) metrics;
//   - the graph substrate they run on: two-hop local views, generalized
//     Dijkstra, exact first-hop sets, RNG reduction;
//   - a full OLSR/QOLSR protocol stack (HELLO/TC, MPR flooding, topology
//     base, QoS routing tables) over a discrete-event simulator with an
//     ideal MAC;
//   - the paper's evaluation harness: Poisson deployments, the
//     advertised-set-size and QoS-overhead sweeps of Figs. 6-9, and the
//     worked examples of Figs. 1, 2 and 4 as executable fixtures.
//
// # Quick start
//
//	dep := qolsr.PaperDeployment(15)                  // δ=15, 1000×1000, R=100
//	rng := rand.New(rand.NewSource(1))
//	g, err := qolsr.BuildNetwork(dep, "bandwidth", qolsr.DefaultInterval(), rng)
//	...
//	view := qolsr.NewLocalView(g, someNode)
//	w, _ := g.Weights("bandwidth")
//	ans, err := qolsr.FNBP{}.Select(view, qolsr.Bandwidth(), w)
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and per-experiment index.
package qolsr
