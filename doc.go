// Package qolsr is a from-scratch reproduction of "Towards an efficient QoS
// based selection of neighbors in QOLSR" (Khadar, Mitton, Simplot-Ryl; SN
// 2010 workshop at IEEE ICDCS 2010).
//
// The paper's contribution is FNBP — "first node on best path" — a QoS
// Advertised Neighbor Set (QANS) selection rule for OLSR-style proactive
// routing in wireless ad hoc and sensor networks: each node computes, inside
// its two-hop local view, the QoS-optimal paths to every 1- and 2-hop
// neighbor and advertises a minimal set of optimal first hops. Compared to
// the original QOLSR MPR heuristics and to RNG topology filtering, FNBP
// advertises far fewer neighbors while keeping routed paths within a few
// percent of the centralized optimum.
//
// The package is organised file-per-concern:
//
//   - graph.go — the substrate: multi-channel weighted graphs, two-hop
//     local views, generalized Dijkstra, fP(u,v) first-hop sets, Poisson
//     deployments and unit-disk network generation, DOT rendering;
//   - metrics.go — the QoS metric algebra (bandwidth, delay, hop, energy,
//     lexicographic combinations) and its name registry;
//   - selection.go — the selection algorithms (FNBP, QOLSR MPR-1/MPR-2,
//     RFC 3626 greedy MPR, RNG topology filtering) and their registry;
//   - protocol.go — routing over advertised topologies and the full
//     OLSR/QOLSR protocol stack (HELLO/TC, MPR flooding, QoS routing
//     tables) over a discrete-event simulator, with mobility;
//   - experiment.go — the Experiment/Runner API regenerating the paper's
//     evaluation (Figs. 6-9) and the repository's ablations;
//   - scenario.go — the Scenario API: declarative dynamic-network programs
//     on the live protocol stack.
//
// # Experiments
//
// Experiments are composed from figures — by value or by registry name —
// and executed by a Runner as a cancellable parallel pipeline: density
// points and the runs inside each point share one worker budget, and
// completed points stream out while the sweep is in flight.
//
//	exp, err := qolsr.ExperimentByID("fig6", "fig8")
//	res, err := exp.Run(ctx, qolsr.WithRuns(100), qolsr.WithSeed(1),
//		qolsr.WithWorkers(8), qolsr.WithProgress(log.Printf))
//	res.WriteTables(os.Stdout)   // the paper's tables
//	res.EncodeJSON(os.Stdout)    // machine-readable ("qolsr-sweep/v1")
//	res.EncodeCSV(os.Stdout)     // long-form rows for plotting tools
//
// Results are deterministic: every run's RNG stream is derived by a
// splitmix64 mix of (seed, degree, run), so a fixed seed yields
// bit-identical output for any WithWorkers value. Cancelling the context
// stops the pool promptly with ctx.Err().
//
// For incremental consumption (live plotting, partial saves), Stream
// delivers each completed density point as it lands:
//
//	events, wait := exp.Stream(ctx, qolsr.WithRuns(100))
//	for ev := range events {
//		if ev.Kind == qolsr.EventPoint {
//			plot(ev.FigureID, ev.Degree, ev.Point)
//		}
//	}
//	res, err := wait()
//
// # Scenarios
//
// The paper evaluates FNBP on static random graphs; the scenario layer runs
// the same protocol implementations through the dynamic regimes OLSR's
// soft-state timers exist for. A Scenario is a declarative program — a
// topology source (Poisson deployment or explicit points), a protocol
// configuration, a timeline of phases (link failures and restores,
// partitions, waypoint mobility) and a probe workload — executed on the
// live stack, with delivery ratio, hop stretch, routing overhead vs. the
// instantaneous optimum, control traffic, advertised-set sizes and
// post-churn reconvergence time sampled at a fixed virtual-time cadence.
// Built-ins resolve by name, parameterised by selector:
//
//	sc, err := qolsr.ScenarioByName("single-link-flap", "fnbp")
//	res, err := qolsr.RunScenario(ctx, sc, qolsr.WithRuns(5), qolsr.WithSeed(1))
//	res.WriteTable(os.Stdout)   // aggregate table + reconvergence summary
//	res.EncodeJSON(os.Stdout)   // machine-readable ("qolsr-scenario/v1")
//
// Replicate runs parallelize under the runner's worker budget with the same
// determinism guarantee as the sweeps: every run's RNG streams derive from
// (seed, run), so results are bit-identical for any WithWorkers value.
//
// # Radio medium
//
// Every transmission crosses a pluggable Medium that decides who receives
// each frame and after how long. The default ideal MAC is the paper's model
// (fixed propagation delay, no loss); the lossy medium adds per-link
// packet-error rates (base, distance-dependent and per-link components), a
// per-node transmit queue whose serialization delay derives from the link's
// bandwidth weight, and bounded jitter — every draw keyed per
// (seed, src, dst, frame-seq) through splitmix64, so lossy simulations are
// reproducible at any worker count. On a lossy radio the protocol can
// measure its links instead of trusting the oracle:
// ProtocolConfig.MeasuredQoS derives link weights from windowed HELLO
// delivery ratios (ETX for additive metrics, the delivery product for
// concave ones), carried between link ends by a backward-compatible HELLO
// block. Scenarios select the medium declaratively (ScenarioMedium, the
// ActionSetLoss/ActionDegradeLink phases, the lossy-baseline and
// lossy-degrade built-ins), and Runner.LossSweep sweeps delivery against
// the loss rate comparing oracle against measured selection.
//
// # Traffic & QoS flows
//
// The traffic engine closes the loop on the paper's premise — flows with
// bandwidth and delay requirements. Flow classes (FlowClassCBR,
// FlowClassPoisson, FlowClassVideo — on-off bursty VBR) offer sustained
// load packet by packet through the live routing tables and the medium's
// transmit queues; an admission gate (AdmissionGate) walks the forwarding
// path the tables actually select and checks its composed bandwidth/delay
// against each flow's FlowRequirements before the flow may start, with an
// oracle feasibility judgment classifying every rejection as correct or
// false. Per-flow accounting reports delivery, throughput, delay
// mean/p50/p95/p99 (streaming P² quantiles), inter-packet jitter and a
// QoS verdict per flow; the mix's violation ratio — admitted flows whose
// measured traffic broke a bound — scores a selection policy under load.
// Scenarios carry a mix in ScenarioTraffic.Mix (the legacy Flows probe
// count keeps its exact pre-engine behaviour), the load-ramp and
// video-vs-cbr built-ins exercise it, and Runner.LoadSweep (ablation A8)
// sweeps QoS satisfaction against offered load, comparing the paper's
// QoS-based selection with hop-count selection under oracle and measured
// link sensing. All packet arrival and size draws are keyed per
// (seed, flow, packet-seq), so traffic runs are bit-identical at any
// worker count.
//
// # Real mesh daemon
//
// The same protocol engine deploys outside the simulator: internal/node
// wraps an olsr.Node in a daemon driven by wall-clock timers over a real
// UDP socket (cmd/qolsr-node is the CLI). Daemons exchange versioned
// frames carrying the standard HELLO/TC encodings, authenticate senders
// against a static peer table, and measure per-link delay from echo
// timestamps piggybacked on every frame — each completed exchange closes a
// round trip entirely in the sender's own clock, so no clock
// synchronization is needed. A windowed-minimum filter distils the samples
// into routing weights, data packets ride the daemons' own routing tables
// hop by hop, and an HTTP status endpoint reports neighbors, RTTs, the MPR
// set and the routing table as JSON. The wire codecs are fuzzed against
// hostile input; see the package documentation of internal/node and the
// README's "Running a real mesh" section.
//
// # Cached routing
//
// Protocol nodes follow link-state practice: routes are recomputed on state
// change, not on lookup. Every content-changing mutation of a node's soft
// state — a link update, HELLO/TC ingestion that alters advertised content,
// or a virtual-time expiry — bumps a topology version; the local view, the
// known topology and the routing table are cached artifacts rebuilt only
// when the version moved. Re-announcements of unchanged content (the
// steady-state regime) merely extend validity deadlines, and a min-expiry
// watermark keeps the expiry check O(1) while nothing can be stale, so a
// converged network serves lookups from cache indefinitely. Node.Routes
// returns a read-only Routes snapshot with an allocation-free Lookup;
// successive calls between state changes return the same snapshot, and a
// retained snapshot stays consistent after the node rebuilds. Caching never
// changes which table a data packet sees at a given virtual time — only how
// it is computed — a guarantee locked by the golden and worker-determinism
// tests.
//
// # Event-driven core
//
// Everything the simulator does — HELLO/TC emissions, soft-state expiries,
// frame deliveries, traffic packet arrivals, phase actions and samples —
// flows through one discrete-event scheduler (internal/des) whose
// (time, priority, sequence) total order never consults memory addresses,
// map iteration, or the wall clock: a run is a pure function of its inputs
// and stays bit-identical regardless of host or how many workers drive
// other runs in parallel. The scheduler is a pointer-free 4-ary heap
// (entries carry only the ordering key and a slot index, so sifts are plain
// memmoves with no GC write barriers) paired with a fixed-delay FIFO lane:
// steady streams whose delays are constant — every hop of a
// constant-latency medium — enqueue in O(1) and merge with the heap at pop
// time under the same total order, falling back to the heap whenever a push
// would break the lane's time order. Around it, the hot path is
// allocation-free by construction: data packets, radio frames, and
// protocol emitters are pooled; forwarding decisions are cached per
// (node, destination) and invalidated by table or link generation;
// duplicate suppression is a per-origin window probed in place;
// soft-state expiry is a single watermark comparison until something can
// actually be stale; and routing tables rebuild through an incremental SPF
// cross-checked against full rebuilds. The node-count scaling of the whole
// stack is a first-class experiment (Runner.ScaleSweep, -ablation scale);
// BENCH_core.json records the headline numbers.
//
// # Shared topology & parallel rebuilds
//
// Big fields spend their time ingesting what they already know: in steady
// state every flooded TC re-announces an unchanged link set to N-1
// receivers. The topology store is built around that regime. Advertised
// link blocks are interned — an origin's normalized []LinkInfo is shared
// read-only between the emitter's cache, every in-flight message, and
// every receiver's topology entry, so the steady-state ingest path is one
// pointer comparison plus a deadline refresh, and a content change pays
// one linear merge that marks exactly the (origin, neighbor) pairs that
// differ for the incremental SPF. Per-node soft state lives in dense slot
// tables when the population declares contiguous IDs (Config.DenseIDs):
// flat arrays indexed by node ID replace hash maps in every hot lookup,
// and ascending-ID iteration becomes an array walk with the same order the
// determinism contract already required. Graph node-index resolution is
// O(1) (an identity fast path when IDs equal indices, a maintained reverse
// index otherwise), which keeps routing-graph construction linear.
//
// Because each node's routing table is a pure function of that node's own
// soft state — interned blocks are read-only by contract — any set of
// tables can be rebuilt concurrently. Network.RebuildRoutes is that
// barrier: it fans the dirty nodes' SPF work across a worker budget and
// produces tables bit-identical to the serial path at every worker count
// (scenario.Scenario.Workers and eval.ScaleSweepOptions.Workers thread the
// budget; a churn-heavy lossy scenario encoding to identical JSON at
// workers 1 and 8 locks the property, and CI runs the barrier under the
// race detector). Rebuild activity is observable end to end:
// olsr.RebuildStats counts interning hits, topology builds and the
// full/incremental SPF split per node, scenario samples carry the windowed
// series, and run totals report the epoch hit rate.
// BenchmarkTopologyRebuild and BenchmarkSPF track the two hot paths;
// BENCH_core.json records them alongside the scale sweep.
//
// # Control-plane scaling
//
// Three opt-in optimisations make control overhead sublinear in density at
// equal delivery, all off by default and independently toggled through
// olsr.Config (scenario.Protocol and the sweeps thread them). Delta-encoded
// TCs (Config.DeltaTC) anchor a chain of incremental TC-DELTA messages —
// each carrying only the links added, reweighted or removed since the last
// advertisement — on a periodically refreshed full TC; a receiver applies a
// delta only when its (full sequence, chain index) extends the chain it is
// synced to, and a gap desynchronises it until the next full rebases the
// chain, so loss degrades to classic full-TC behaviour rather than stale
// topology. Fish-eye scoping (Config.FisheyeTTLs) cycles TC emissions
// through a TTL schedule — scoped emissions refresh nearby topology cheaply
// while periodic unlimited ones (TTL 0) reach the whole network; combined
// with DeltaTC, full TCs ride exactly the unlimited emissions. Min-cover
// flood relays (Config.FloodRelay) select a second, coverage-minimal relay
// set for flooding — RFC 3626 greedy plus redundancy pruning — decoupling
// flooding cost from the QoS-driven advertised set, which stays intact for
// routing. Runner.OverheadSweep (-ablation overhead) measures each
// optimisation against the original QOLSR plane on identical fields;
// BENCH_overhead.json records the result.
//
// # Observability
//
// internal/obs is one metrics-and-tracing layer shared by the simulator and
// the daemon, built to cost nothing while disabled. A Registry holds
// fixed-slot counters, gauges and histograms (atomics underneath, no maps
// on the hot path) plus lazy collectors that read existing counters only at
// snapshot time; zero-value handles and a nil *Tracer are inert no-ops, so
// the disabled path is a nil check. The contract is enforced, not assumed:
// disabled handles are zero-allocation by test, instrumenting the registry
// adds exactly 0 allocs/op to the BenchmarkTrafficEngine workload, and
// enabling metrics or tracing leaves a scenario's measurement JSON
// bit-identical — observability is a pure read layer over the deterministic
// core. Scenario runs export the merged registry snapshot
// (qolsr-sim scenario run -metrics-out, schema qolsr-metrics/v1) and
// sampled packet path traces (-trace, -trace-every N) as Chrome trace-event
// JSON loadable in Perfetto: one track per flow, one span per hop with the
// transmit-queue wait, a terminal event carrying the outcome. Sampling is
// keyed by rng.Mix(seed, flow, seq) — never arrival order — and events
// append in virtual event order, so traces are byte-identical at any worker
// count. The daemon serves the same registry live: /metrics on the -status
// listener is Prometheus text exposition backed by the cells the status
// JSON derives from, and -pprof mounts net/http/pprof on the same loopback
// listener.
//
// # Quick start
//
//	dep := qolsr.PaperDeployment(15)                  // δ=15, 1000×1000, R=100
//	rng := rand.New(rand.NewSource(1))
//	g, err := qolsr.BuildNetwork(dep, "bandwidth", qolsr.DefaultInterval(), rng)
//	...
//	view := qolsr.NewLocalView(g, someNode)
//	w, _ := g.Weights("bandwidth")
//	ans, err := qolsr.FNBP{}.Select(view, qolsr.Bandwidth(), w)
//
// See examples/ for runnable programs and cmd/qolsr-sim for the sweep CLI.
package qolsr
